//! Parallel sweep harness for the experiment suite.
//!
//! Every figure regenerates from a grid of independent simulation
//! points — (config, benchmark, design, seed) — and the simulator is
//! single-threaded and deterministic, so the grid parallelizes
//! perfectly across host cores. This module provides:
//!
//! * a job model ([`SweepSpec`] / [`PointKey`] / [`PointResult`]),
//! * a dependency-free worker pool on [`std::thread::scope`] (the
//!   workspace builds offline with no external crates, and stays that
//!   way),
//! * memoized workload generation and lowering shared across points
//!   (four designs x three seeds per benchmark previously regenerated
//!   identical inputs),
//! * deterministic aggregation: results come back indexed by
//!   [`PointKey`] and are reduced in spec order, so a parallel sweep is
//!   byte-identical to `--serial`.
//!
//! Worker count: `--jobs N` > `PMEMSPEC_JOBS` >
//! [`std::thread::available_parallelism`]; `--serial` forces one
//! worker through the same code path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use pmem_spec::{run_program, ProfileReport, RunReport, SpanReport, System};
use pmemspec_engine::SimConfig;
use pmemspec_isa::abs::AbsProgram;
use pmemspec_isa::{lower_program, lower_program_with_meta, DesignKind, Program, ProgramMeta};
use pmemspec_workloads::{Benchmark, WorkloadParams};

use crate::args::BenchArgs;

/// Identity of one simulation point inside a sweep.
///
/// The derived ordering (config, then benchmark, then design, then
/// seed) is the canonical reduction order helpers aggregate in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PointKey {
    /// Index into [`SweepSpec::configs`].
    pub cfg: usize,
    /// The workload.
    pub benchmark: Benchmark,
    /// The hardware/ISA design.
    pub design: DesignKind,
    /// The generation seed.
    pub seed: u64,
}

/// One point of a sweep: its identity plus the FASE count to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    /// Identity (also the aggregation key).
    pub key: PointKey,
    /// FASEs per thread for this point's workload.
    pub fases: usize,
}

/// A grid of simulation points to run.
#[derive(Debug, Clone, Default)]
pub struct SweepSpec {
    /// The simulator configurations points refer to by index.
    pub configs: Vec<SimConfig>,
    /// The points, in the order results will be reduced.
    pub points: Vec<SweepPoint>,
}

impl SweepSpec {
    /// A spec over the given configurations, with no points yet.
    pub fn new(configs: Vec<SimConfig>) -> Self {
        SweepSpec {
            configs,
            points: Vec::new(),
        }
    }

    /// Adds one point.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is out of range.
    pub fn add(
        &mut self,
        cfg: usize,
        benchmark: Benchmark,
        design: DesignKind,
        seed: u64,
        fases: usize,
    ) {
        assert!(cfg < self.configs.len(), "config index {cfg} out of range");
        self.points.push(SweepPoint {
            key: PointKey {
                cfg,
                benchmark,
                design,
                seed,
            },
            fases,
        });
    }

    /// Adds the full (benchmark x design x seed) grid for one config,
    /// with per-benchmark FASE counts.
    pub fn add_grid(
        &mut self,
        cfg: usize,
        designs: &[DesignKind],
        seeds: &[u64],
        fases: impl Fn(Benchmark) -> usize,
    ) {
        for b in Benchmark::ALL {
            let n = fases(b);
            for &d in designs {
                for &s in seeds {
                    self.add(cfg, b, d, s, n);
                }
            }
        }
    }

    /// Runs every point and returns the results, reduced
    /// deterministically regardless of worker count.
    ///
    /// # Panics
    ///
    /// Panics if two points share a [`PointKey`] (the key is the
    /// aggregation identity) or if any point fails to build a valid
    /// system.
    pub fn run(&self, args: &BenchArgs) -> SweepResults {
        let n = self.points.len();
        let mut seen = HashMap::with_capacity(n);
        for (i, p) in self.points.iter().enumerate() {
            if let Some(prev) = seen.insert(p.key, i) {
                panic!("duplicate sweep point {:?} (indices {prev} and {i})", p.key);
            }
        }
        clear_memo();
        let workers = worker_count(args);
        let started = AtomicUsize::new(0);
        let points = parallel_map(n, workers, |i| {
            let p = self.points[i];
            let cfg = &self.configs[p.key.cfg];
            let k = started.fetch_add(1, Ordering::Relaxed) + 1;
            eprintln!(
                "point {k}/{n}: {}/{} cores={} seed={}",
                p.key.benchmark.label(),
                p.key.design.label(),
                cfg.cores,
                p.key.seed
            );
            run_point(p.key.benchmark, p.key.design, cfg, p.fases, p.key.seed)
        });
        let results = SweepResults::from_points(
            self.points
                .iter()
                .zip(points)
                .map(|(p, (report, note))| PointResult {
                    key: p.key,
                    fases: p.fases,
                    report,
                    note,
                })
                .collect(),
        );
        // Misspeculation notes, attributed to their point, in spec
        // order — never interleaved between workers.
        for p in results.iter() {
            if let Some(note) = &p.note {
                eprintln!("{note}");
            }
        }
        results
    }
}

/// The outcome of one sweep point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Which point this is.
    pub key: PointKey,
    /// FASEs per thread the point ran with.
    pub fases: usize,
    /// The full simulation report.
    pub report: RunReport,
    /// Misspeculation note for the record, when the run saw any.
    pub note: Option<String>,
}

/// Results of a sweep, indexed by [`PointKey`] and iterable in spec
/// order.
#[derive(Debug, Clone, Default)]
pub struct SweepResults {
    points: Vec<PointResult>,
    index: HashMap<PointKey, usize>,
}

impl SweepResults {
    /// Builds results from per-point outcomes (kept in the given
    /// order).
    ///
    /// # Panics
    ///
    /// Panics on duplicate keys.
    pub fn from_points(points: Vec<PointResult>) -> Self {
        let mut index = HashMap::with_capacity(points.len());
        for (i, p) in points.iter().enumerate() {
            assert!(
                index.insert(p.key, i).is_none(),
                "duplicate point {:?}",
                p.key
            );
        }
        SweepResults { points, index }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the sweep had no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points in spec order.
    pub fn iter(&self) -> impl Iterator<Item = &PointResult> {
        self.points.iter()
    }

    /// The result for a key, if that point ran.
    pub fn get(&self, key: PointKey) -> Option<&PointResult> {
        self.index.get(&key).map(|&i| &self.points[i])
    }

    /// The report for a (config, benchmark, design, seed) point.
    ///
    /// # Panics
    ///
    /// Panics if the point is not part of the sweep.
    pub fn report(
        &self,
        cfg: usize,
        benchmark: Benchmark,
        design: DesignKind,
        seed: u64,
    ) -> &RunReport {
        let key = PointKey {
            cfg,
            benchmark,
            design,
            seed,
        };
        &self
            .get(key)
            .unwrap_or_else(|| panic!("no such sweep point: {key:?}"))
            .report
    }

    /// Arithmetic-mean throughput across `seeds`, accumulated in seed
    /// order (bit-identical to the historical serial loop).
    pub fn mean_throughput(
        &self,
        cfg: usize,
        benchmark: Benchmark,
        design: DesignKind,
        seeds: &[u64],
    ) -> f64 {
        let mut sum = 0.0;
        for &seed in seeds {
            sum += self.report(cfg, benchmark, design, seed).throughput();
        }
        sum / seeds.len() as f64
    }
}

impl<'a> IntoIterator for &'a SweepResults {
    type Item = &'a PointResult;
    type IntoIter = std::slice::Iter<'a, PointResult>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

/// Runs one (benchmark, design, config, seed) point through the
/// memoized generate/lower path and returns the report plus an
/// attributed misspeculation note, if the run saw any.
pub fn run_point(
    benchmark: Benchmark,
    design: DesignKind,
    cfg: &SimConfig,
    fases: usize,
    seed: u64,
) -> (RunReport, Option<String>) {
    let program = lowered_program(benchmark, design, cfg.cores, fases, seed);
    let report = run_program(cfg.clone(), program).expect("valid experiment");
    let note = (!report.misspeculation_free()).then(|| {
        // Large core counts widen the speculation window (cores x path
        // latency), which can trip rare conservative detections;
        // recovery preserves every FASE, and the cost is already in the
        // measured throughput. Surface it for the record.
        format!(
            "note: {benchmark}/{design} ({} cores, seed {seed}): {} load / {} store \
             misspeculations detected, {} FASEs re-executed",
            cfg.cores,
            report.load_misspec_detected,
            report.store_misspec_detected,
            report.fases_aborted
        )
    });
    (report, note)
}

/// Like [`run_point`], but with cycle accounting and occupancy
/// sampling enabled, returning the profile alongside the report.
/// Profiling observes only, so the report matches [`run_point`]'s
/// byte-for-byte.
pub fn run_point_profiled(
    benchmark: Benchmark,
    design: DesignKind,
    cfg: &SimConfig,
    fases: usize,
    seed: u64,
) -> (RunReport, ProfileReport) {
    let program = lowered_program(benchmark, design, cfg.cores, fases, seed);
    System::new(cfg.clone(), program)
        .expect("valid experiment")
        .run_profiled()
}

/// Like [`run_point_profiled`], but also traces per-FASE spans,
/// returning the span report alongside the aggregate profile. Span
/// tracing observes only, so the report still matches [`run_point`]'s
/// byte-for-byte.
pub fn run_point_spans(
    benchmark: Benchmark,
    design: DesignKind,
    cfg: &SimConfig,
    fases: usize,
    seed: u64,
) -> (RunReport, ProfileReport, SpanReport) {
    let (program, meta) = lowered_program_with_meta(benchmark, design, cfg.cores, fases, seed);
    System::new(cfg.clone(), program)
        .expect("valid experiment")
        .run_spans(&meta)
}

// ---------------------------------------------------------------------
// Worker pool

/// How many workers a run should use: `--serial` forces 1, then
/// `--jobs N`, then `PMEMSPEC_JOBS`, then the host's available
/// parallelism.
pub fn worker_count(args: &BenchArgs) -> usize {
    if args.serial {
        return 1;
    }
    if let Some(n) = args.jobs {
        return n;
    }
    if let Some(n) = std::env::var("PMEMSPEC_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Maps `f` over `0..jobs` on `workers` scoped threads, returning the
/// results in index order. With one worker (or one job) it runs inline
/// on the caller's thread — the `--serial` escape hatch takes exactly
/// the same code path as the parallel one except for the spawn.
///
/// # Panics
///
/// A panic inside `f` propagates to the caller (via
/// [`std::thread::scope`]'s implicit join).
pub fn parallel_map<T, F>(jobs: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || jobs <= 1 {
        return (0..jobs).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers.min(jobs) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

// ---------------------------------------------------------------------
// Memoized generation + lowering

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct GenKey {
    benchmark: Benchmark,
    threads: usize,
    fases: usize,
    seed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct LowerKey {
    design: DesignKind,
    gen: GenKey,
}

type MemoMap<K, V> = Mutex<HashMap<K, std::sync::Arc<OnceLock<V>>>>;

struct Memo {
    generated: MemoMap<GenKey, AbsProgram>,
    lowered: MemoMap<LowerKey, Arc<Program>>,
    lowered_meta: MemoMap<LowerKey, (Arc<Program>, Arc<ProgramMeta>)>,
}

fn memo() -> &'static Memo {
    static MEMO: OnceLock<Memo> = OnceLock::new();
    MEMO.get_or_init(|| Memo {
        generated: Mutex::new(HashMap::new()),
        lowered: Mutex::new(HashMap::new()),
        lowered_meta: Mutex::new(HashMap::new()),
    })
}

/// Drops every memoized program. Called at the start of each
/// [`SweepSpec::run`] so long multi-sweep binaries (fig10 runs three
/// grids) do not accumulate dead programs.
pub fn clear_memo() {
    memo().generated.lock().expect("memo lock").clear();
    memo().lowered.lock().expect("memo lock").clear();
    memo().lowered_meta.lock().expect("memo lock").clear();
}

fn memo_get<K, V, F>(map: &MemoMap<K, V>, key: K, build: F) -> std::sync::Arc<OnceLock<V>>
where
    K: std::hash::Hash + Eq + Copy,
    V: Clone,
    F: FnOnce() -> V,
{
    let cell = {
        let mut map = map.lock().expect("memo lock");
        map.entry(key).or_default().clone()
    };
    // Build outside the map lock; concurrent requests for the same key
    // block on the cell, not the whole cache.
    cell.get_or_init(build);
    cell
}

/// The abstract program for a workload point, memoized process-wide so
/// the designs and seeds of a sweep share one generation.
pub fn generated_program(
    benchmark: Benchmark,
    threads: usize,
    fases: usize,
    seed: u64,
) -> AbsProgram {
    let key = GenKey {
        benchmark,
        threads,
        fases,
        seed,
    };
    let cell = memo_get(&memo().generated, key, || {
        let params = WorkloadParams::small(threads)
            .with_fases(fases)
            .with_seed(seed);
        benchmark.generate(&params).program
    });
    cell.get().expect("initialized above").clone()
}

/// The lowered per-design program for a workload point, memoized on
/// top of [`generated_program`].
pub fn lowered_program(
    benchmark: Benchmark,
    design: DesignKind,
    threads: usize,
    fases: usize,
    seed: u64,
) -> Arc<Program> {
    let gen = GenKey {
        benchmark,
        threads,
        fases,
        seed,
    };
    let key = LowerKey { design, gen };
    let cell = memo_get(&memo().lowered, key, || {
        let abs = generated_program(benchmark, threads, fases, seed);
        Arc::new(lower_program(design, &abs))
    });
    cell.get().expect("initialized above").clone()
}

/// Like [`lowered_program`], but pairs the program with its lowering
/// metadata ([`ProgramMeta`]) for span tracing and static analysis.
/// Memoized separately from the meta-less path (the two lowerings
/// produce equal programs; a test pins that).
pub fn lowered_program_with_meta(
    benchmark: Benchmark,
    design: DesignKind,
    threads: usize,
    fases: usize,
    seed: u64,
) -> (Arc<Program>, Arc<ProgramMeta>) {
    let gen = GenKey {
        benchmark,
        threads,
        fases,
        seed,
    };
    let key = LowerKey { design, gen };
    let cell = memo_get(&memo().lowered_meta, key, || {
        let abs = generated_program(benchmark, threads, fases, seed);
        let (program, meta) = lower_program_with_meta(design, &abs);
        (Arc::new(program), Arc::new(meta))
    });
    cell.get().expect("initialized above").clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmemspec_engine::clock::Cycle;
    use pmemspec_engine::stats::Stats;

    fn key(cfg: usize, benchmark: Benchmark, design: DesignKind, seed: u64) -> PointKey {
        PointKey {
            cfg,
            benchmark,
            design,
            seed,
        }
    }

    fn result(k: PointKey, committed: u64, ns: u64) -> PointResult {
        PointResult {
            key: k,
            fases: 1,
            report: RunReport {
                design: k.design,
                total_time: Cycle::from_ns(ns),
                fases_committed: committed,
                fases_aborted: 0,
                load_misspec_detected: 0,
                store_misspec_detected: 0,
                stale_reads_ground_truth: 0,
                store_inversions_ground_truth: 0,
                persist_order_violations: 0,
                spec_buffer_overflows: 0,
                pm_reads: 0,
                pm_writes: 0,
                stats: Stats::new(),
            },
            note: None,
        }
    }

    #[test]
    fn point_key_orders_by_cfg_then_benchmark_then_design_then_seed() {
        let base = key(0, Benchmark::ArraySwaps, DesignKind::IntelX86, 11);
        assert!(base < key(1, Benchmark::ArraySwaps, DesignKind::IntelX86, 11));
        assert!(base < key(0, Benchmark::Queue, DesignKind::IntelX86, 11));
        assert!(base < key(0, Benchmark::ArraySwaps, DesignKind::PmemSpec, 11));
        assert!(base < key(0, Benchmark::ArraySwaps, DesignKind::IntelX86, 42));
        // Config dominates benchmark, benchmark dominates design,
        // design dominates seed.
        assert!(
            key(0, Benchmark::Queue, DesignKind::PmemSpec, 1337)
                < key(1, Benchmark::ArraySwaps, DesignKind::IntelX86, 11)
        );
        assert!(
            key(0, Benchmark::ArraySwaps, DesignKind::PmemSpec, 1337)
                < key(0, Benchmark::Queue, DesignKind::IntelX86, 11)
        );
        let mut keys = vec![
            key(1, Benchmark::ArraySwaps, DesignKind::IntelX86, 11),
            key(0, Benchmark::Queue, DesignKind::IntelX86, 11),
            key(0, Benchmark::ArraySwaps, DesignKind::PmemSpec, 42),
            key(0, Benchmark::ArraySwaps, DesignKind::PmemSpec, 11),
        ];
        keys.sort();
        assert_eq!(
            keys,
            vec![
                key(0, Benchmark::ArraySwaps, DesignKind::PmemSpec, 11),
                key(0, Benchmark::ArraySwaps, DesignKind::PmemSpec, 42),
                key(0, Benchmark::Queue, DesignKind::IntelX86, 11),
                key(1, Benchmark::ArraySwaps, DesignKind::IntelX86, 11),
            ]
        );
    }

    #[test]
    fn aggregation_means_in_seed_order() {
        let b = Benchmark::Hashmap;
        let d = DesignKind::PmemSpec;
        // 10 FASEs in 1 us = 1e7 FASEs/s; 20 in 1 us = 2e7.
        let results = SweepResults::from_points(vec![
            result(key(0, b, d, 11), 10, 1_000),
            result(key(0, b, d, 42), 20, 1_000),
        ]);
        assert_eq!(results.len(), 2);
        let mean = results.mean_throughput(0, b, d, &[11, 42]);
        let expected = (results.report(0, b, d, 11).throughput()
            + results.report(0, b, d, 42).throughput())
            / 2.0;
        assert_eq!(mean.to_bits(), expected.to_bits());
    }

    #[test]
    #[should_panic(expected = "duplicate point")]
    fn duplicate_keys_rejected() {
        let k = key(0, Benchmark::Queue, DesignKind::Hops, 11);
        let _ = SweepResults::from_points(vec![result(k, 1, 10), result(k, 1, 10)]);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        let serial = parallel_map(100, 1, |i| i * i);
        assert_eq!(out, serial);
    }

    #[test]
    fn memoized_programs_are_reused_and_identical() {
        clear_memo();
        let a = lowered_program(Benchmark::ArraySwaps, DesignKind::PmemSpec, 2, 5, 11);
        let b = lowered_program(Benchmark::ArraySwaps, DesignKind::PmemSpec, 2, 5, 11);
        assert_eq!(a, b);
        // A fresh, unmemoized build matches too.
        clear_memo();
        let c = lowered_program(Benchmark::ArraySwaps, DesignKind::PmemSpec, 2, 5, 11);
        assert_eq!(a, c);
    }

    #[test]
    fn meta_lowering_matches_the_plain_path() {
        clear_memo();
        let plain = lowered_program(Benchmark::Queue, DesignKind::PmemSpec, 2, 5, 11);
        let (with_meta, meta) =
            lowered_program_with_meta(Benchmark::Queue, DesignKind::PmemSpec, 2, 5, 11);
        assert_eq!(plain, with_meta);
        assert_eq!(meta.threads.len(), plain.thread_count());
        for (i, t) in meta.threads.iter().enumerate() {
            assert_eq!(t.ops.len(), plain.thread(i).ops().len());
        }
    }

    #[test]
    fn worker_count_honors_serial_and_jobs() {
        let serial = BenchArgs::serial();
        assert_eq!(worker_count(&serial), 1);
        let jobs = BenchArgs::from_iter(["--jobs", "3"]);
        assert_eq!(worker_count(&jobs), 3);
    }
}
