//! The one command-line parser shared by every experiment binary.
//!
//! Every figure/table binary accepts the same small flag set, so the
//! parsing lives here instead of being re-scanned ad hoc per binary
//! (the old `csv_mode()` pattern):
//!
//! | Flag | Meaning |
//! |---|---|
//! | `--csv` | machine-readable CSV instead of markdown |
//! | `--json[=PATH]` | also write the results as JSON (default `results/<bin>.json`) |
//! | `--serial` | run every sweep point on one thread (escape hatch) |
//! | `--jobs N` | worker-thread count (overrides `PMEMSPEC_JOBS`) |
//!
//! Environment:
//!
//! | Variable | Meaning |
//! |---|---|
//! | `PMEMSPEC_JOBS` | default worker count (else `available_parallelism`) |
//! | `PMEMSPEC_SMOKE` | reduced grid: 2 cores, 1 seed, 25 FASEs |
//!
//! Unknown arguments are ignored, matching the old behaviour (the
//! binaries are also invoked by test harnesses that pass their own
//! flags).

use std::path::PathBuf;

/// Parsed command-line options for an experiment binary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BenchArgs {
    /// `--csv`: emit CSV instead of markdown.
    pub csv: bool,
    /// `--json` was given (with or without a path).
    pub json: bool,
    /// Explicit `--json=PATH` / `--json PATH` target, when given.
    pub json_path: Option<PathBuf>,
    /// `--serial`: force one worker.
    pub serial: bool,
    /// `--jobs N`: explicit worker count.
    pub jobs: Option<usize>,
}

impl BenchArgs {
    /// Parses `std::env::args()`.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Convenience constructor for a serial run (used by tests).
    pub fn serial() -> Self {
        BenchArgs {
            serial: true,
            ..BenchArgs::default()
        }
    }

    /// Where `--json` output should go for a binary named `name`:
    /// the explicit path when one was given, else `results/<name>.json`;
    /// `None` when `--json` was not requested.
    pub fn json_target(&self, name: &str) -> Option<PathBuf> {
        if !self.json {
            return None;
        }
        Some(
            self.json_path
                .clone()
                .unwrap_or_else(|| PathBuf::from(format!("results/{name}.json"))),
        )
    }
}

/// Parses an explicit argument list (testable; no process state).
impl<S: Into<String>> FromIterator<S> for BenchArgs {
    fn from_iter<I: IntoIterator<Item = S>>(args: I) -> Self {
        let mut out = BenchArgs::default();
        let mut iter = args.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--csv" => out.csv = true,
                "--serial" => out.serial = true,
                "--json" => {
                    out.json = true;
                    // Accept an optional separate path operand, but do
                    // not swallow a following flag.
                    if let Some(next) = iter.peek() {
                        if !next.starts_with('-') {
                            out.json_path = Some(PathBuf::from(iter.next().expect("peeked")));
                        }
                    }
                }
                "--jobs" => {
                    if let Some(v) = iter.next() {
                        out.jobs = v.parse().ok().filter(|&n: &usize| n > 0);
                    }
                }
                _ => {
                    if let Some(path) = arg.strip_prefix("--json=") {
                        out.json = true;
                        out.json_path = Some(PathBuf::from(path));
                    } else if let Some(v) = arg.strip_prefix("--jobs=") {
                        out.jobs = v.parse().ok().filter(|&n: &usize| n > 0);
                    }
                    // Anything else: ignore, like the old csv_mode().
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_off() {
        let a = BenchArgs::from_iter(Vec::<String>::new());
        assert_eq!(a, BenchArgs::default());
        assert!(a.json_target("fig9").is_none());
    }

    #[test]
    fn flags_parse() {
        let a = BenchArgs::from_iter(["--csv", "--serial", "--jobs", "3"]);
        assert!(a.csv && a.serial);
        assert_eq!(a.jobs, Some(3));
    }

    #[test]
    fn json_default_and_explicit_paths() {
        let a = BenchArgs::from_iter(["--json"]);
        assert_eq!(
            a.json_target("fig9"),
            Some(PathBuf::from("results/fig9.json"))
        );
        let b = BenchArgs::from_iter(["--json=/tmp/x.json"]);
        assert_eq!(b.json_target("fig9"), Some(PathBuf::from("/tmp/x.json")));
        let c = BenchArgs::from_iter(["--json", "out.json"]);
        assert_eq!(c.json_target("fig9"), Some(PathBuf::from("out.json")));
    }

    #[test]
    fn json_does_not_swallow_flags() {
        let a = BenchArgs::from_iter(["--json", "--csv"]);
        assert!(a.json && a.csv);
        assert!(a.json_path.is_none());
    }

    #[test]
    fn unknown_arguments_are_ignored() {
        let a = BenchArgs::from_iter(["--quiet", "--nocapture", "--csv"]);
        assert!(a.csv);
        assert!(!a.serial);
    }

    #[test]
    fn zero_jobs_is_rejected() {
        let a = BenchArgs::from_iter(["--jobs", "0"]);
        assert_eq!(a.jobs, None);
    }
}
