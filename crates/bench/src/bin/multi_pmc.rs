//! §7 extension: multiple PM controllers.
//!
//! Part 1 — throughput scaling of PMEM-Spec with 1/2/4 line-interleaved
//! controllers behind an order-preserving network (the paper's proposed
//! fix), on the benchmark suite.
//!
//! Part 2 — the hazard the paper warns about: with independent
//! per-controller persist routes, a congestion-inducing program inverts a
//! single thread's persist order (undetectable by per-controller
//! speculation buffers); the order-preserving network eliminates it.

use pmem_spec::{run_program, System};
use pmemspec_bench::{csv_mode, default_fases, SEEDS};
use pmemspec_engine::config::PmcNetworkOrder;
use pmemspec_engine::SimConfig;
use pmemspec_isa::{lower_program, DesignKind};
use pmemspec_workloads::{synthetic, Benchmark, WorkloadParams};

fn main() {
    let csv = csv_mode();
    if !csv {
        println!("## Multi-controller scaling (PMEM-Spec, 8 cores, ordered network)");
        println!();
        println!("| controllers | geomean throughput vs 1 controller | order violations |");
        println!("|---|---|---|");
    } else {
        println!("controllers,relative_throughput,order_violations");
    }
    let mut base = None;
    for controllers in [1usize, 2, 4] {
        let cfg = SimConfig::asplos21(8).with_pm_controllers(controllers, PmcNetworkOrder::Fifo);
        let mut ln_sum = 0.0;
        let mut n = 0u32;
        let mut violations = 0u64;
        for b in Benchmark::ALL {
            let fases = default_fases(b) / 2;
            for &seed in &SEEDS[..1] {
                let params = WorkloadParams::small(8).with_fases(fases).with_seed(seed);
                let g = b.generate(&params);
                let r = run_program(cfg.clone(), lower_program(DesignKind::PmemSpec, &g.program))
                    .expect("valid run");
                ln_sum += r.throughput().ln();
                violations += r.persist_order_violations;
                n += 1;
            }
        }
        let geo = (ln_sum / f64::from(n)).exp();
        let rel = base.map(|b: f64| geo / b).unwrap_or(1.0);
        if base.is_none() {
            base = Some(geo);
        }
        if csv {
            println!("{controllers},{rel:.4},{violations}");
        } else {
            println!("| {controllers} | {rel:.3} | {violations} |");
        }
    }

    if !csv {
        println!();
        println!("## The §7 hazard: persist-order across controllers (flood program)");
        println!();
        println!("| network | order violations | FASEs committed |");
        println!("|---|---|---|");
    } else {
        println!("network,order_violations,committed");
    }
    for (label, order) in [
        ("order-preserving (proposed fix)", PmcNetworkOrder::Fifo),
        ("independent routes (hazard)", PmcNetworkOrder::Unordered),
    ] {
        let cfg = SimConfig::asplos21(1).with_pm_controllers(2, order);
        let p = synthetic::cross_controller_inversion(2, 50);
        let r = System::new(cfg, lower_program(DesignKind::PmemSpec, &p))
            .expect("valid system")
            .run();
        if csv {
            println!(
                "{label},{},{}",
                r.persist_order_violations, r.fases_committed
            );
        } else {
            println!(
                "| {label} | {} | {} |",
                r.persist_order_violations, r.fases_committed
            );
        }
    }
}
