//! §7 extension: multiple PM controllers.
//!
//! Part 1 — throughput scaling of PMEM-Spec with 1/2/4 line-interleaved
//! controllers behind an order-preserving network (the paper's proposed
//! fix), on the benchmark suite.
//!
//! Part 2 — the hazard the paper warns about: with independent
//! per-controller persist routes, a congestion-inducing program inverts a
//! single thread's persist order (undetectable by per-controller
//! speculation buffers); the order-preserving network eliminates it.

use pmem_spec::System;
use pmemspec_bench::sweep::{parallel_map, worker_count};
use pmemspec_bench::{default_fases, seeds, write_json, BenchArgs, Json, SweepSpec};
use pmemspec_engine::config::PmcNetworkOrder;
use pmemspec_engine::SimConfig;
use pmemspec_isa::{lower_program, DesignKind};
use pmemspec_workloads::{synthetic, Benchmark};

fn main() {
    let args = BenchArgs::parse();
    let csv = args.csv;
    let controllers = [1usize, 2, 4];
    let one_seed = &seeds()[..1];

    let mut spec = SweepSpec::new(
        controllers
            .iter()
            .map(|&c| SimConfig::asplos21(8).with_pm_controllers(c, PmcNetworkOrder::Fifo))
            .collect(),
    );
    for ci in 0..controllers.len() {
        spec.add_grid(ci, &[DesignKind::PmemSpec], one_seed, |b| {
            default_fases(b) / 2
        });
    }
    let results = spec.run(&args);

    if !csv {
        println!("## Multi-controller scaling (PMEM-Spec, 8 cores, ordered network)");
        println!();
        println!("| controllers | geomean throughput vs 1 controller | order violations |");
        println!("|---|---|---|");
    } else {
        println!("controllers,relative_throughput,order_violations");
    }
    let mut base = None;
    let mut scaling_json = Vec::new();
    for (ci, &c) in controllers.iter().enumerate() {
        let mut ln_sum = 0.0;
        let mut n = 0u32;
        let mut violations = 0u64;
        for b in Benchmark::ALL {
            for &seed in one_seed {
                let r = results.report(ci, b, DesignKind::PmemSpec, seed);
                ln_sum += r.throughput().ln();
                violations += r.persist_order_violations;
                n += 1;
            }
        }
        let geo = (ln_sum / f64::from(n)).exp();
        let rel = base.map_or(1.0, |b: f64| geo / b);
        if base.is_none() {
            base = Some(geo);
        }
        if csv {
            println!("{c},{rel:.4},{violations}");
        } else {
            println!("| {c} | {rel:.3} | {violations} |");
        }
        scaling_json.push(Json::obj([
            ("controllers".into(), Json::Num(c as f64)),
            ("relative_throughput".into(), Json::Num(rel)),
            ("order_violations".into(), Json::Num(violations as f64)),
        ]));
    }

    // Part 2: the §7 hazard — two single-core systems, run on the pool.
    let networks = [
        ("order-preserving (proposed fix)", PmcNetworkOrder::Fifo),
        ("independent routes (hazard)", PmcNetworkOrder::Unordered),
    ];
    let reports = parallel_map(networks.len(), worker_count(&args), |i| {
        let cfg = SimConfig::asplos21(1).with_pm_controllers(2, networks[i].1);
        let p = synthetic::cross_controller_inversion(2, 50);
        System::new(cfg, lower_program(DesignKind::PmemSpec, &p))
            .expect("valid system")
            .run()
    });

    if !csv {
        println!();
        println!("## The §7 hazard: persist-order across controllers (flood program)");
        println!();
        println!("| network | order violations | FASEs committed |");
        println!("|---|---|---|");
    } else {
        println!("network,order_violations,committed");
    }
    let mut hazard_json = Vec::new();
    for ((label, _), r) in networks.iter().zip(&reports) {
        if csv {
            println!(
                "{label},{},{}",
                r.persist_order_violations, r.fases_committed
            );
        } else {
            println!(
                "| {label} | {} | {} |",
                r.persist_order_violations, r.fases_committed
            );
        }
        hazard_json.push(Json::obj([
            ("network".into(), Json::Str((*label).into())),
            (
                "order_violations".into(),
                Json::Num(r.persist_order_violations as f64),
            ),
            ("committed".into(), Json::Num(r.fases_committed as f64)),
        ]));
    }
    write_json(
        &args,
        "multi_pmc",
        &Json::obj([
            ("figure".into(), Json::Str("multi_pmc".into())),
            ("scaling".into(), Json::Arr(scaling_json)),
            ("hazard".into(), Json::Arr(hazard_json)),
        ]),
    );
}
