//! `waterfall`: why is each FASE slow, per design?
//!
//! Runs every benchmark under every design (including the StrandWeaver
//! extension) with per-FASE span tracing enabled and writes, per
//! design × benchmark: the span-latency quantile row
//! (p50/p95/p99/p99.9/max, first `FaseBegin` to commit, retries
//! included), the p99 tail's binding constraint (the bucket dominating
//! the most tail spans) with its bucket-share shift between the median
//! body and the tail, and the top-k slowest FASEs with their bucket
//! waterfalls. Every span is conservation-checked: its bucket sum
//! equals its wall-cycles, so the waterfalls reconcile with the
//! `explain` aggregate breakdown.
//!
//! Output:
//!
//! * `<out>/waterfall.md` — the per-design tables (also printed).
//! * `<out>/waterfall.json` — raw quantiles, per-bucket cycle totals
//!   for the median/tail span sets, and the top-k span waterfalls.
//! * `--trace-dir DIR` — additionally writes one Perfetto trace per
//!   design (Hashmap workload) with the FASE spans merged in as named
//!   slices on per-core lanes (phase sub-slices nested inside); open
//!   in <https://ui.perfetto.dev>.
//!
//! Points run on the shared worker pool and reduce in spec order, so
//! the output is byte-identical to `--serial`; CI diffs the two.
//!
//! Flags: the shared set ([`BenchArgs`]) plus `--out DIR` (default
//! `results`).

use std::path::PathBuf;

use pmem_spec::{Bucket, FaseSpan, SpanReport, System};
use pmemspec_bench::{default_fases, seeds, suite_cores, sweep, BenchArgs, Json};
use pmemspec_engine::stats::Histogram;
use pmemspec_engine::SimConfig;
use pmemspec_isa::DesignKind;
use pmemspec_workloads::Benchmark;

/// The tail under analysis: spans at or above this latency quantile.
const TAIL_Q: f64 = 0.99;
/// Slowest FASEs listed per design × benchmark.
const TOP_K: usize = 3;
/// Buckets shown per listed FASE waterfall.
const TOP_BUCKETS: usize = 4;

/// `--out DIR` / `--out=DIR` and `--trace-dir DIR` / `--trace-dir=DIR`,
/// scanned from the raw argument list ([`BenchArgs`] ignores flags it
/// does not know).
fn extra_flags() -> (PathBuf, Option<PathBuf>) {
    let mut out = PathBuf::from("results");
    let mut trace_dir = None;
    let mut iter = std::env::args().skip(1).peekable();
    while let Some(arg) = iter.next() {
        let mut take = |target: &mut PathBuf| {
            if let Some(v) = iter.peek() {
                if !v.starts_with('-') {
                    *target = PathBuf::from(iter.next().expect("peeked"));
                }
            }
        };
        match arg.as_str() {
            "--out" => take(&mut out),
            "--trace-dir" => {
                let mut dir = PathBuf::new();
                take(&mut dir);
                trace_dir = Some(dir);
            }
            _ => {
                if let Some(v) = arg.strip_prefix("--out=") {
                    out = PathBuf::from(v);
                } else if let Some(v) = arg.strip_prefix("--trace-dir=") {
                    trace_dir = Some(PathBuf::from(v));
                }
            }
        }
    }
    (out, trace_dir)
}

/// One span-traced grid point, in spec order.
struct Point {
    design: DesignKind,
    benchmark: Benchmark,
    fases: usize,
    spans: SpanReport,
}

/// A span's waterfall as `label share%` pairs, heaviest first (ties in
/// [`Bucket::ALL`] order), capped at [`TOP_BUCKETS`].
fn span_waterfall(s: &FaseSpan) -> String {
    let total = s.bucket_sum().max(1);
    let mut cells: Vec<(usize, Bucket, u64)> = Bucket::ALL
        .iter()
        .enumerate()
        .map(|(i, &b)| (i, b, s.get(b)))
        .filter(|&(_, _, c)| c > 0)
        .collect();
    cells.sort_by_key(|&(i, _, c)| (std::cmp::Reverse(c), i));
    cells
        .iter()
        .take(TOP_BUCKETS)
        .map(|&(_, b, c)| format!("{} {:.1}%", b.label(), 100.0 * c as f64 / total as f64))
        .collect::<Vec<_>>()
        .join(", ")
}

fn markdown(cores: usize, seed: u64, points: &[Point]) -> String {
    use std::fmt::Write as _;
    let mut md = String::new();
    let _ = writeln!(md, "# Per-FASE latency waterfalls");
    let _ = writeln!(md);
    let _ = writeln!(
        md,
        "Every committed FASE as a span from its first `FaseBegin` to its \
         committing `FaseEnd` (misspeculation retries included), its cycles \
         attributed to the profiler's cause buckets — each span a \
         conservation-checked waterfall. Latencies are simulated cycles. \
         The tail tables answer \"why is the p99 FASE slow\": the bucket \
         dominating the most p99+ spans, and how that bucket's share shifts \
         between the median body and the tail. {cores} cores, seed {seed}. \
         Regenerate with `cargo run --release --bin waterfall`."
    );
    for design in DesignKind::ALL_EXTENDED {
        let row: Vec<&Point> = points.iter().filter(|p| p.design == design).collect();
        let _ = writeln!(md);
        let _ = writeln!(md, "## {}", design.label());
        let _ = writeln!(md);
        let _ = writeln!(md, "| benchmark | span latency (cycles) |");
        let _ = writeln!(md, "|---|---|");
        for p in &row {
            let _ = writeln!(
                md,
                "| {} | {} |",
                p.benchmark.label(),
                p.spans.latency_histogram().compact_row()
            );
        }
        let _ = writeln!(md);
        let _ = writeln!(
            md,
            "| benchmark | p99+ spans | binding constraint | median share | tail share | shift |"
        );
        let _ = writeln!(md, "|---|---:|---|---:|---:|---:|");
        for p in &row {
            let tail = p.spans.tail_spans(TAIL_Q);
            let Some(constraint) = SpanReport::dominant_constraint(&tail) else {
                let _ = writeln!(md, "| {} | 0 | — | — | — | — |", p.benchmark.label());
                continue;
            };
            let median = p.spans.median_spans();
            let m = 100.0 * SpanReport::bucket_shares(&median)[constraint.index()];
            let t = 100.0 * SpanReport::bucket_shares(&tail)[constraint.index()];
            let _ = writeln!(
                md,
                "| {} | {} | {} | {m:.1}% | {t:.1}% | {:+.1} pp |",
                p.benchmark.label(),
                tail.len(),
                constraint.label(),
                t - m,
            );
        }
        let _ = writeln!(md);
        let _ = writeln!(md, "Slowest FASEs:");
        let _ = writeln!(md);
        for p in &row {
            for s in p.spans.tail_spans(TAIL_Q).iter().take(TOP_K) {
                let _ = writeln!(
                    md,
                    "- {}: `core{}/{}` {} cycles, {} attempt{} — {}",
                    p.benchmark.label(),
                    s.core,
                    s.fase,
                    s.duration().raw(),
                    s.attempts,
                    if s.attempts == 1 { "" } else { "s" },
                    span_waterfall(s),
                );
            }
        }
    }
    md
}

/// The quantile row as a JSON object of raw cycle counts.
fn latency_json(h: &Histogram) -> Json {
    let raw = |q: Option<pmemspec_engine::clock::Duration>| {
        Json::Num(q.map_or(0, pmemspec_engine::Duration::raw) as f64)
    };
    Json::obj([
        ("spans".into(), Json::Num(h.count() as f64)),
        ("p50".into(), raw(h.p50())),
        ("p95".into(), raw(h.p95())),
        ("p99".into(), raw(h.p99())),
        ("p999".into(), raw(h.p999())),
        ("max".into(), raw(h.max())),
        ("mean".into(), Json::Num(h.mean().raw() as f64)),
    ])
}

/// Per-bucket cycle totals as a JSON object in [`Bucket::ALL`] order.
fn buckets_json(cycles: &[u64; Bucket::COUNT]) -> Json {
    Json::obj(
        Bucket::ALL
            .iter()
            .map(|&b| (b.label().to_string(), Json::Num(cycles[b.index()] as f64))),
    )
}

fn span_json(s: &FaseSpan) -> Json {
    Json::obj([
        ("core".into(), Json::Num(s.core as f64)),
        ("fase".into(), Json::Num(s.fase.0 as f64)),
        ("cycles".into(), Json::Num(s.duration().raw() as f64)),
        ("attempts".into(), Json::Num(s.attempts as f64)),
        (
            "buckets".into(),
            Json::obj(
                Bucket::ALL
                    .iter()
                    .filter(|&&b| s.get(b) > 0)
                    .map(|&b| (b.label().to_string(), Json::Num(s.get(b) as f64))),
            ),
        ),
    ])
}

fn json_doc(cores: usize, seed: u64, points: &[Point]) -> Json {
    Json::obj([
        ("experiment".into(), Json::Str("waterfall".into())),
        ("cores".into(), Json::Num(cores as f64)),
        ("seed".into(), Json::Num(seed as f64)),
        ("tail_quantile".into(), Json::Num(TAIL_Q)),
        (
            "buckets".into(),
            Json::Arr(
                Bucket::ALL
                    .iter()
                    .map(|b| Json::Str(b.label().into()))
                    .collect(),
            ),
        ),
        (
            "points".into(),
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        let tail = p.spans.tail_spans(TAIL_Q);
                        let median = p.spans.median_spans();
                        Json::obj([
                            ("design".into(), Json::Str(p.design.label().into())),
                            ("benchmark".into(), Json::Str(p.benchmark.label().into())),
                            ("fases".into(), Json::Num(p.fases as f64)),
                            ("latency".into(), latency_json(&p.spans.latency_histogram())),
                            (
                                "tail".into(),
                                Json::obj([
                                    (
                                        "threshold".into(),
                                        Json::Num(
                                            p.spans
                                                .latency_threshold(TAIL_Q)
                                                .map_or(0, pmemspec_engine::Duration::raw)
                                                as f64,
                                        ),
                                    ),
                                    ("count".into(), Json::Num(tail.len() as f64)),
                                    (
                                        "binding_constraint".into(),
                                        SpanReport::dominant_constraint(&tail)
                                            .map_or(Json::Null, |b| Json::Str(b.label().into())),
                                    ),
                                    (
                                        "median_bucket_cycles".into(),
                                        buckets_json(&SpanReport::bucket_cycles(&median)),
                                    ),
                                    (
                                        "tail_bucket_cycles".into(),
                                        buckets_json(&SpanReport::bucket_cycles(&tail)),
                                    ),
                                    (
                                        "top".into(),
                                        Json::Arr(
                                            tail.iter().take(TOP_K).map(|s| span_json(s)).collect(),
                                        ),
                                    ),
                                ]),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn write_traces(dir: &PathBuf, cores: usize, seed: u64) {
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
    let benchmark = Benchmark::Hashmap;
    let fases = default_fases(benchmark);
    let cfg = SimConfig::asplos21(cores);
    for design in DesignKind::ALL_EXTENDED {
        let (program, meta) =
            sweep::lowered_program_with_meta(benchmark, design, cores, fases, seed);
        let (_, mut tracer, profile, spans) = System::new(cfg.clone(), program)
            .expect("valid experiment")
            .run_spans_traced(&meta);
        profile.add_counter_tracks(&mut tracer);
        spans.add_fase_tracks(&mut tracer);
        let path = dir.join(format!(
            "trace_fases_{}.json",
            design.label().to_ascii_lowercase().replace('-', "_")
        ));
        let file = std::fs::File::create(&path)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
        tracer
            .write_chrome_trace(std::io::BufWriter::new(file))
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
}

fn main() {
    let args = BenchArgs::parse();
    let (out, trace_dir) = extra_flags();
    let cores = suite_cores();
    let seed = seeds()[0];
    let cfg = SimConfig::asplos21(cores);

    let spec: Vec<(DesignKind, Benchmark)> = DesignKind::ALL_EXTENDED
        .iter()
        .flat_map(|&d| Benchmark::ALL.iter().map(move |&b| (d, b)))
        .collect();
    let workers = sweep::worker_count(&args);
    let points: Vec<Point> = sweep::parallel_map(spec.len(), workers, |i| {
        let (design, benchmark) = spec[i];
        let fases = default_fases(benchmark);
        let (_, _, spans) = sweep::run_point_spans(benchmark, design, &cfg, fases, seed);
        Point {
            design,
            benchmark,
            fases,
            spans,
        }
    });

    let md = markdown(cores, seed, &points);
    print!("{md}");
    std::fs::create_dir_all(&out)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", out.display()));
    let md_path = out.join("waterfall.md");
    std::fs::write(&md_path, &md)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", md_path.display()));
    let json_path = out.join("waterfall.json");
    std::fs::write(&json_path, json_doc(cores, seed, &points).render_pretty())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", json_path.display()));
    eprintln!("wrote {}", md_path.display());
    eprintln!("wrote {}", json_path.display());

    if let Some(dir) = trace_dir {
        write_traces(&dir, cores, seed);
    }
}
