//! §6.3 ablation: incremental checkpointing bounds misspeculation
//! recovery to the region that misspeculated.
//!
//! A long FASE (8 expensive regions + a misspeculating tail) runs at 25x
//! persist-path latency with and without intra-FASE checkpoints. The
//! paper cites iDO-style region partitioning reaching 400x faster
//! recovery for some long FASEs; the ratio here scales with how much
//! work precedes the misspeculating region.

use pmem_spec::System;
use pmemspec_bench::sweep::{parallel_map, worker_count};
use pmemspec_bench::{write_json, BenchArgs, Json};
use pmemspec_engine::clock::Duration;
use pmemspec_engine::SimConfig;
use pmemspec_isa::{lower_program, DesignKind};
use pmemspec_workloads::synthetic;

fn main() {
    let args = BenchArgs::parse();
    let cfg = SimConfig::asplos21(1).with_persist_path_latency(Duration::from_ns(500));
    let grid: Vec<(&str, bool, usize)> = [
        ("whole-FASE recovery", false),
        ("checkpointed (§6.3)", true),
    ]
    .iter()
    .flat_map(|&(label, ck)| [2usize, 8, 32].into_iter().map(move |s| (label, ck, s)))
    .collect();
    let reports = parallel_map(grid.len(), worker_count(&args), |i| {
        let (_, checkpoints, segments) = grid[i];
        let p = synthetic::long_fase_inducer(&cfg, 20, segments, checkpoints);
        System::new(cfg.clone(), lower_program(DesignKind::PmemSpec, &p))
            .expect("valid system")
            .run()
    });
    let rows: Vec<_> = grid
        .iter()
        .map(|&(label, _, segments)| (label, segments))
        .zip(reports)
        .map(|((label, segments), r)| (label, segments, r))
        .collect();
    if args.csv {
        println!("mode,segments,total_ns,aborts,partial_aborts");
        for (label, segments, r) in &rows {
            println!(
                "{label},{segments},{},{},{}",
                r.total_time.as_ns(),
                r.fases_aborted,
                r.stats.counter("fase.partial_aborts")
            );
        }
    } else {
        println!("## §6.3 ablation: recovery scope vs FASE length (25x persist latency)");
        println!();
        println!("| recovery | prefix regions | run time (ns) | aborts | partial |");
        println!("|---|---|---|---|---|");
        for (label, segments, r) in &rows {
            println!(
                "| {label} | {segments} | {} | {} | {} |",
                r.total_time.as_ns(),
                r.fases_aborted,
                r.stats.counter("fase.partial_aborts")
            );
        }
        // Pair up the speedups.
        println!();
        for segments in [2usize, 8, 32] {
            let plain = rows
                .iter()
                .find(|(l, s, _)| *l == "whole-FASE recovery" && *s == segments)
                .map(|(_, _, r)| r.total_time.as_ns())
                .expect("row exists");
            let ck = rows
                .iter()
                .find(|(l, s, _)| *l == "checkpointed (§6.3)" && *s == segments)
                .map(|(_, _, r)| r.total_time.as_ns())
                .expect("row exists");
            println!(
                "{segments} prefix regions: checkpointing saves {:.1}% of run time",
                (1.0 - ck as f64 / plain as f64) * 100.0
            );
        }
    }
    write_json(
        &args,
        "ablation_checkpoint",
        &Json::obj([
            ("figure".into(), Json::Str("ablation_checkpoint".into())),
            (
                "rows".into(),
                Json::Arr(
                    rows.iter()
                        .map(|(label, segments, r)| {
                            Json::obj([
                                ("mode".into(), Json::Str((*label).into())),
                                ("segments".into(), Json::Num(*segments as f64)),
                                ("total_ns".into(), Json::Num(r.total_time.as_ns() as f64)),
                                ("aborts".into(), Json::Num(r.fases_aborted as f64)),
                                (
                                    "partial_aborts".into(),
                                    Json::Num(r.stats.counter("fase.partial_aborts") as f64),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    );
}
