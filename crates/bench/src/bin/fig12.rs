//! Figure 12: geomean throughput of HOPS and PMEM-Spec vs persist-path
//! latency (20-100 ns), normalized to the IntelX86 baseline (which has no
//! persist path and stays fixed).
//!
//! Paper: both stay above the baseline across the sweep because the
//! durability barrier is infrequent.

use pmemspec_bench::{csv_mode, default_fases, throughput, SEEDS};
use pmemspec_engine::clock::Duration;
use pmemspec_engine::SimConfig;
use pmemspec_isa::DesignKind;
use pmemspec_workloads::Benchmark;

fn main() {
    let _ = SEEDS; // documented averaging lives in throughput()
    let latencies = [20u64, 40, 60, 80, 100];
    let base_cfg = SimConfig::asplos21(8);
    // Baseline geomean (independent of the persist path).
    let mut base_ln = 0.0;
    for b in Benchmark::ALL {
        base_ln += throughput(b, DesignKind::IntelX86, &base_cfg, default_fases(b)).ln();
    }
    let base = (base_ln / Benchmark::ALL.len() as f64).exp();

    let mut rows = Vec::new();
    for &ns in &latencies {
        let cfg = base_cfg
            .clone()
            .with_persist_path_latency(Duration::from_ns(ns));
        let mut out = [0.0f64; 2];
        for (i, d) in [DesignKind::Hops, DesignKind::PmemSpec].iter().enumerate() {
            let mut ln = 0.0;
            for b in Benchmark::ALL {
                ln += throughput(b, *d, &cfg, default_fases(b)).ln();
            }
            out[i] = (ln / Benchmark::ALL.len() as f64).exp() / base;
        }
        rows.push((ns, out[0], out[1]));
    }
    if csv_mode() {
        println!("persist_path_ns,HOPS,PMEM-Spec");
        for (ns, h, p) in &rows {
            println!("{ns},{h:.4},{p:.4}");
        }
    } else {
        println!("## Figure 12: persist-path latency sensitivity (geomean vs IntelX86 = 1.0)");
        println!();
        println!("| persist path (ns) | HOPS | PMEM-Spec |");
        println!("|---|---|---|");
        for (ns, h, p) in &rows {
            println!("| {ns} | {h:.2} | {p:.2} |");
        }
    }
}
