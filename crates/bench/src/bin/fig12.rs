//! Figure 12: geomean throughput of HOPS and PMEM-Spec vs persist-path
//! latency (20-100 ns), normalized to the IntelX86 baseline (which has no
//! persist path and stays fixed).
//!
//! Paper: both stay above the baseline across the sweep because the
//! durability barrier is infrequent.

use pmemspec_bench::{default_fases, seeds, write_json, BenchArgs, Json, SweepSpec};
use pmemspec_engine::clock::Duration;
use pmemspec_engine::SimConfig;
use pmemspec_isa::DesignKind;
use pmemspec_workloads::Benchmark;

fn main() {
    let args = BenchArgs::parse();
    let latencies = [20u64, 40, 60, 80, 100];
    let base_cfg = SimConfig::asplos21(8);

    // Config 0 carries the IntelX86 baseline (independent of the
    // persist path); configs 1.. are the latency sweep.
    let mut configs = vec![base_cfg.clone()];
    configs.extend(latencies.iter().map(|&ns| {
        base_cfg
            .clone()
            .with_persist_path_latency(Duration::from_ns(ns))
    }));
    let mut spec = SweepSpec::new(configs);
    spec.add_grid(0, &[DesignKind::IntelX86], seeds(), default_fases);
    for ci in 1..=latencies.len() {
        spec.add_grid(
            ci,
            &[DesignKind::Hops, DesignKind::PmemSpec],
            seeds(),
            default_fases,
        );
    }
    let results = spec.run(&args);

    // Baseline geomean, reduced in benchmark order (the historical
    // serial arithmetic, bit for bit).
    let mut base_ln = 0.0;
    for b in Benchmark::ALL {
        base_ln += results
            .mean_throughput(0, b, DesignKind::IntelX86, seeds())
            .ln();
    }
    let base = (base_ln / Benchmark::ALL.len() as f64).exp();

    let mut rows = Vec::new();
    for (li, &ns) in latencies.iter().enumerate() {
        let mut out = [0.0f64; 2];
        for (i, d) in [DesignKind::Hops, DesignKind::PmemSpec].iter().enumerate() {
            let mut ln = 0.0;
            for b in Benchmark::ALL {
                ln += results.mean_throughput(li + 1, b, *d, seeds()).ln();
            }
            out[i] = (ln / Benchmark::ALL.len() as f64).exp() / base;
        }
        rows.push((ns, out[0], out[1]));
    }
    if args.csv {
        println!("persist_path_ns,HOPS,PMEM-Spec");
        for (ns, h, p) in &rows {
            println!("{ns},{h:.4},{p:.4}");
        }
    } else {
        println!("## Figure 12: persist-path latency sensitivity (geomean vs IntelX86 = 1.0)");
        println!();
        println!("| persist path (ns) | HOPS | PMEM-Spec |");
        println!("|---|---|---|");
        for (ns, h, p) in &rows {
            println!("| {ns} | {h:.2} | {p:.2} |");
        }
    }
    write_json(
        &args,
        "fig12",
        &Json::obj([
            ("figure".into(), Json::Str("fig12".into())),
            (
                "rows".into(),
                Json::Arr(
                    rows.iter()
                        .map(|&(ns, h, p)| {
                            Json::obj([
                                ("persist_path_ns".into(), Json::Num(ns as f64)),
                                ("HOPS".into(), Json::Num(h)),
                                ("PMEM-Spec".into(), Json::Num(p)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    );
}
