//! `explain`: where do the cycles go, for every design?
//!
//! Runs every benchmark under every design (including the StrandWeaver
//! extension) with cycle accounting enabled and writes a per-design
//! breakdown table: each cell is the percentage of total core-cycles the
//! design spent in a stall bucket on that benchmark. The tables make the
//! paper's argument legible — IntelX86's cycles drain into flush/fence
//! stalls, DPO/HOPS trade them for persist-buffer pressure, and
//! PMEM-Spec converts nearly all of it into issue/compute.
//!
//! Output:
//!
//! * `<out>/breakdown.md` — the per-design tables (also printed).
//! * `<out>/breakdown.json` — the raw per-point cycle counts.
//! * `--trace-dir DIR` — additionally writes one Perfetto trace per
//!   design (Hashmap workload) with the queue-occupancy counter tracks
//!   merged in; open in <https://ui.perfetto.dev>.
//! * `--collapsed` — additionally writes `<out>/breakdown.folded`:
//!   one `design;benchmark;bucket count` collapsed-stack line per
//!   non-zero cell, the input format of every flamegraph renderer
//!   (`flamegraph.pl`, `inferno`, speedscope).
//!
//! Points run on the shared worker pool and reduce in spec order, so
//! the output is byte-identical to `--serial`; CI diffs the two.
//!
//! Flags: the shared set ([`BenchArgs`]) plus `--out DIR` (default
//! `results`).

use std::path::PathBuf;

use pmem_spec::{Bucket, ProfileReport, System};
use pmemspec_bench::{default_fases, seeds, suite_cores, sweep, BenchArgs, Json};
use pmemspec_engine::SimConfig;
use pmemspec_isa::DesignKind;
use pmemspec_workloads::Benchmark;

/// `--out DIR` / `--out=DIR`, `--trace-dir DIR` / `--trace-dir=DIR`,
/// and `--collapsed`, scanned from the raw argument list ([`BenchArgs`]
/// ignores flags it does not know).
fn extra_flags() -> (PathBuf, Option<PathBuf>, bool) {
    let mut out = PathBuf::from("results");
    let mut trace_dir = None;
    let mut collapsed = false;
    let mut iter = std::env::args().skip(1).peekable();
    while let Some(arg) = iter.next() {
        let mut take = |target: &mut PathBuf| {
            if let Some(v) = iter.peek() {
                if !v.starts_with('-') {
                    *target = PathBuf::from(iter.next().expect("peeked"));
                }
            }
        };
        match arg.as_str() {
            "--out" => take(&mut out),
            "--trace-dir" => {
                let mut dir = PathBuf::new();
                take(&mut dir);
                trace_dir = Some(dir);
            }
            "--collapsed" => collapsed = true,
            _ => {
                if let Some(v) = arg.strip_prefix("--out=") {
                    out = PathBuf::from(v);
                } else if let Some(v) = arg.strip_prefix("--trace-dir=") {
                    trace_dir = Some(PathBuf::from(v));
                }
            }
        }
    }
    (out, trace_dir, collapsed)
}

/// One profiled grid point, in spec order.
struct Point {
    design: DesignKind,
    benchmark: Benchmark,
    fases: usize,
    profile: ProfileReport,
}

fn markdown(cores: usize, seed: u64, points: &[Point]) -> String {
    use std::fmt::Write as _;
    let mut md = String::new();
    let _ = writeln!(md, "# Cycle-accounting breakdown");
    let _ = writeln!(md);
    let _ = writeln!(
        md,
        "Every simulated core-cycle of every run, attributed to exactly one \
         cause bucket (rows; percentages of the design's total core-cycles \
         on that benchmark). {cores} cores, seed {seed}. Regenerate with \
         `cargo run --release --bin explain`."
    );
    for design in DesignKind::ALL_EXTENDED {
        let row: Vec<&Point> = points.iter().filter(|p| p.design == design).collect();
        let _ = writeln!(md);
        let _ = writeln!(md, "## {}", design.label());
        let _ = writeln!(md);
        let _ = write!(md, "| bucket |");
        for p in &row {
            let _ = write!(md, " {} |", p.benchmark.label());
        }
        let _ = writeln!(md);
        let _ = writeln!(md, "|---|{}", "---:|".repeat(row.len()));
        for bucket in Bucket::ALL {
            if row.iter().all(|p| p.profile.bucket_total(bucket) == 0) {
                continue;
            }
            let _ = write!(md, "| {} |", bucket.label());
            for p in &row {
                let _ = write!(md, " {:.1}% |", 100.0 * p.profile.bucket_fraction(bucket));
            }
            let _ = writeln!(md);
        }
        let _ = write!(md, "| **total cycles** |");
        for p in &row {
            let _ = write!(md, " {} |", p.profile.grand_total());
        }
        let _ = writeln!(md);
    }
    md
}

fn json_doc(cores: usize, seed: u64, points: &[Point]) -> Json {
    Json::obj([
        ("experiment".into(), Json::Str("breakdown".into())),
        ("cores".into(), Json::Num(cores as f64)),
        ("seed".into(), Json::Num(seed as f64)),
        (
            "buckets".into(),
            Json::Arr(
                Bucket::ALL
                    .iter()
                    .map(|b| Json::Str(b.label().into()))
                    .collect(),
            ),
        ),
        (
            "points".into(),
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("design".into(), Json::Str(p.design.label().into())),
                            ("benchmark".into(), Json::Str(p.benchmark.label().into())),
                            ("fases".into(), Json::Num(p.fases as f64)),
                            (
                                "total_time_cycles".into(),
                                Json::Num(p.profile.total_time.raw() as f64),
                            ),
                            (
                                "llc_dirty_pm_lines".into(),
                                Json::Num(p.profile.llc_dirty_pm_lines as f64),
                            ),
                            (
                                "buckets".into(),
                                Json::obj(Bucket::ALL.iter().map(|&b| {
                                    (
                                        b.label().to_string(),
                                        Json::Num(p.profile.bucket_total(b) as f64),
                                    )
                                })),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Collapsed-stack ("folded") rendering of the breakdown: one
/// `design;benchmark;bucket count` line per non-zero cell, in spec
/// order. Flamegraph renderers take this directly, so the same cycle
/// attribution the tables show as percentages becomes an interactive
/// flame graph with designs as the roots and buckets as the leaves.
fn folded(points: &[Point]) -> String {
    use std::fmt::Write as _;
    let mut text = String::new();
    for p in points {
        for bucket in Bucket::ALL {
            let count = p.profile.bucket_total(bucket);
            if count != 0 {
                let _ = writeln!(
                    text,
                    "{};{};{} {count}",
                    p.design.label(),
                    p.benchmark.label(),
                    bucket.label(),
                );
            }
        }
    }
    text
}

fn write_traces(dir: &PathBuf, cores: usize, seed: u64) {
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
    let benchmark = Benchmark::Hashmap;
    let fases = default_fases(benchmark);
    let cfg = SimConfig::asplos21(cores);
    for design in DesignKind::ALL_EXTENDED {
        let program = sweep::lowered_program(benchmark, design, cores, fases, seed);
        let (_, mut tracer, profile) = System::new(cfg.clone(), program)
            .expect("valid experiment")
            .run_traced_profiled();
        profile.add_counter_tracks(&mut tracer);
        let path = dir.join(format!(
            "trace_{}.json",
            design.label().to_ascii_lowercase().replace('-', "_")
        ));
        let file = std::fs::File::create(&path)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
        tracer
            .write_chrome_trace(std::io::BufWriter::new(file))
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
}

fn main() {
    let args = BenchArgs::parse();
    let (out, trace_dir, collapsed) = extra_flags();
    let cores = suite_cores();
    let seed = seeds()[0];
    let cfg = SimConfig::asplos21(cores);

    let spec: Vec<(DesignKind, Benchmark)> = DesignKind::ALL_EXTENDED
        .iter()
        .flat_map(|&d| Benchmark::ALL.iter().map(move |&b| (d, b)))
        .collect();
    let workers = sweep::worker_count(&args);
    let points: Vec<Point> = sweep::parallel_map(spec.len(), workers, |i| {
        let (design, benchmark) = spec[i];
        let fases = default_fases(benchmark);
        let (_, profile) = sweep::run_point_profiled(benchmark, design, &cfg, fases, seed);
        Point {
            design,
            benchmark,
            fases,
            profile,
        }
    });

    let md = markdown(cores, seed, &points);
    print!("{md}");
    std::fs::create_dir_all(&out)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", out.display()));
    let md_path = out.join("breakdown.md");
    std::fs::write(&md_path, &md)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", md_path.display()));
    let json_path = out.join("breakdown.json");
    std::fs::write(&json_path, json_doc(cores, seed, &points).render_pretty())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", json_path.display()));
    eprintln!("wrote {}", md_path.display());
    eprintln!("wrote {}", json_path.display());
    if collapsed {
        let folded_path = out.join("breakdown.folded");
        std::fs::write(&folded_path, folded(&points))
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", folded_path.display()));
        eprintln!("wrote {}", folded_path.display());
    }

    if let Some(dir) = trace_dir {
        write_traces(&dir, cores, seed);
    }
}
