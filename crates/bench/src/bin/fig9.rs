//! Figure 9: throughput of all four designs on the eight benchmarks in
//! the 8-core system, normalized to the IntelX86 epoch baseline.
//!
//! Paper: PMEM-Spec 1.272x the baseline and 1.106x HOPS on average; DPO
//! below the baseline; Queue/Hashmap show the smallest gains;
//! Vacation/Memcached benefit from long transactions.

use pmemspec_bench::{normalized_suite, print_suite};
use pmemspec_engine::SimConfig;

fn main() {
    let cfg = SimConfig::asplos21(8);
    let rows = normalized_suite(&cfg);
    print_suite(
        "Figure 9: 8-core throughput (normalized to IntelX86)",
        &rows,
    );
}
