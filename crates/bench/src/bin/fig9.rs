//! Figure 9: throughput of all four designs on the eight benchmarks in
//! the 8-core system, normalized to the IntelX86 epoch baseline.
//!
//! Paper: PMEM-Spec 1.272x the baseline and 1.106x HOPS on average; DPO
//! below the baseline; Queue/Hashmap show the smallest gains;
//! Vacation/Memcached benefit from long transactions.

use pmemspec_bench::{
    normalized_suite_with, print_suite, suite_cores, suite_json, write_json, BenchArgs,
};
use pmemspec_engine::SimConfig;
use pmemspec_isa::DesignKind;

fn main() {
    let args = BenchArgs::parse();
    let cores = suite_cores();
    let cfg = SimConfig::asplos21(cores);
    let rows = normalized_suite_with(&cfg, &DesignKind::ALL, &args);
    print_suite(
        &args,
        &format!("Figure 9: {cores}-core throughput (normalized to IntelX86)"),
        &rows,
    );
    write_json(
        &args,
        "fig9",
        &suite_json("fig9", cores, &DesignKind::ALL, &rows),
    );
}
