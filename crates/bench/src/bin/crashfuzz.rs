//! Crash-consistency fuzzer + persistency litmus driver.
//!
//! Two phases, both fanned through the sweep worker pool:
//!
//! 1. **Litmus**: every (litmus test × design) pair from
//!    [`pmemspec_crashtest::litmus_suite`] is swept over crash points;
//!    any persisted outcome outside the design's allowed set is an
//!    expectation mismatch.
//! 2. **Fuzz**: the full (benchmark × design × seed) grid — 8 workloads
//!    × 5 designs × the seed set — samples crash cycles (dense around
//!    fences/CLWBs/FASE markers/persist arrivals, sparse elsewhere),
//!    replays each design's recovery (undo or redo per workload), and
//!    checks the oracle invariants on the recovered image.
//!
//! Exit code is nonzero on any mismatch or violation; each failure
//! prints a one-line reproducer (`benchmark=… design=… seed=…
//! crash_cycle=…`). `PMEMSPEC_SMOKE=1` shrinks the fuzz grid (1 seed,
//! fewer FASEs and crash points) but always runs the full litmus suite.
//! The default grid samples well over 1,000 distinct crash points.

use std::process::ExitCode;
use std::time::Instant;

use pmemspec_bench::sweep::{parallel_map, worker_count};
use pmemspec_bench::{seeds, smoke_mode, write_json, BenchArgs, Json};
use pmemspec_crashtest::{litmus_suite, run_fuzz_job, run_litmus, FuzzJob};
use pmemspec_isa::DesignKind;
use pmemspec_workloads::{Benchmark, WorkloadParams};

/// Threads per fuzzed workload (2 keeps one grid point affordable while
/// still exercising locks and cross-core persists).
const THREADS: usize = 2;

fn fases_for(benchmark: Benchmark, smoke: bool) -> usize {
    let base = match benchmark {
        // Memcached FASEs are 1 KiB-value transactions — much longer.
        Benchmark::Memcached => 6,
        _ => 12,
    };
    if smoke {
        base / 2
    } else {
        base
    }
}

fn main() -> ExitCode {
    let args = BenchArgs::parse();
    let smoke = smoke_mode();
    let workers = worker_count(&args);
    let started = Instant::now();

    // --- Phase 1: the litmus suite (always in full). --------------------
    let suite = litmus_suite();
    let pairs: Vec<(usize, DesignKind)> = (0..suite.len())
        .flat_map(|t| DesignKind::ALL_EXTENDED.map(|d| (t, d)))
        .collect();
    let litmus_reports = parallel_map(pairs.len(), workers, |i| {
        let (t, design) = pairs[i];
        run_litmus(&suite[t], design)
    });

    println!("## Persistency litmus suite");
    println!();
    println!("| test | design | crash points | distinct outcomes | mismatches |");
    println!("|---|---|---|---|---|");
    let mut litmus_points = 0usize;
    let mut mismatches = Vec::new();
    for r in &litmus_reports {
        litmus_points += r.points;
        println!(
            "| {} | {} | {} | {} | {} |",
            r.test,
            r.design.label(),
            r.points,
            r.outcomes.len(),
            r.mismatches.len()
        );
        mismatches.extend(r.mismatches.iter().cloned());
    }
    println!();

    // --- Phase 2: the fuzz grid. ----------------------------------------
    let seeds = seeds();
    let crash_points = if smoke { 4 } else { 12 };
    let jobs: Vec<FuzzJob> = Benchmark::ALL
        .iter()
        .flat_map(|&benchmark| {
            DesignKind::ALL_EXTENDED.iter().flat_map(move |&design| {
                seeds.iter().map(move |&seed| FuzzJob {
                    benchmark,
                    design,
                    params: WorkloadParams::small(THREADS)
                        .with_fases(fases_for(benchmark, smoke))
                        .with_seed(seed),
                    crash_points,
                    fuzz_seed: pmemspec_isa::log_mix(
                        seed ^ ((benchmark as u64) << 8) ^ ((design as u64) << 16),
                    ),
                })
            })
        })
        .collect();
    let results = parallel_map(jobs.len(), workers, |i| run_fuzz_job(&jobs[i]));

    println!("## Crash-consistency fuzz grid");
    println!();
    println!(
        "{} workloads x {} designs x {} seed(s), {} threads, {} sampled crash \
         points per job (+1 completion point)",
        Benchmark::ALL.len(),
        DesignKind::ALL_EXTENDED.len(),
        seeds.len(),
        THREADS,
        crash_points
    );
    println!();
    println!("| benchmark | design | points | boundaries | rolled back | torn | max durable | violations |");
    println!("|---|---|---|---|---|---|---|---|");
    let mut fuzz_points = 0usize;
    let mut violations = Vec::new();
    for r in &results {
        fuzz_points += r.points;
        if r.seed == seeds[0] {
            // One row per (benchmark, design); aggregate the seeds.
            let group: Vec<_> = results
                .iter()
                .filter(|x| x.benchmark == r.benchmark && x.design == r.design)
                .collect();
            println!(
                "| {} | {} | {} | {} | {} | {} | {} | {} |",
                r.benchmark.label(),
                r.design.label(),
                group.iter().map(|x| x.points).sum::<usize>(),
                group.iter().map(|x| x.boundaries).sum::<usize>(),
                group.iter().map(|x| x.rolled_back_total).sum::<u64>(),
                group.iter().map(|x| x.torn_total).sum::<u64>(),
                group.iter().map(|x| x.max_durable).max().unwrap_or(0),
                group.iter().map(|x| x.violations.len()).sum::<usize>(),
            );
        }
        violations.extend(r.violations.iter().cloned());
    }
    println!();
    println!(
        "{} litmus crash points, {} fuzz crash points, {} total",
        litmus_points,
        fuzz_points,
        litmus_points + fuzz_points,
    );
    println!();
    // Wall clock goes to stderr so the checked-in markdown is
    // byte-stable across regenerations.
    eprintln!(
        "crashfuzz: {:.1} s, {} workers",
        started.elapsed().as_secs_f64(),
        workers
    );

    // --- JSON artifact. --------------------------------------------------
    let doc = Json::obj([
        ("smoke".into(), Json::Bool(smoke)),
        ("litmus_points".into(), Json::Num(litmus_points as f64)),
        ("fuzz_points".into(), Json::Num(fuzz_points as f64)),
        (
            "litmus".into(),
            Json::Arr(
                litmus_reports
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("test".into(), Json::Str(r.test.into())),
                            ("design".into(), Json::Str(r.design.label().into())),
                            ("points".into(), Json::Num(r.points as f64)),
                            (
                                "outcomes".into(),
                                Json::Arr(
                                    r.outcomes
                                        .iter()
                                        .map(|o| {
                                            Json::Arr(
                                                o.iter().map(|&v| Json::Num(v as f64)).collect(),
                                            )
                                        })
                                        .collect(),
                                ),
                            ),
                            ("mismatches".into(), Json::Num(r.mismatches.len() as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "fuzz".into(),
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("benchmark".into(), Json::Str(r.benchmark.label().into())),
                            ("design".into(), Json::Str(r.design.label().into())),
                            ("seed".into(), Json::Num(r.seed as f64)),
                            ("points".into(), Json::Num(r.points as f64)),
                            ("boundaries".into(), Json::Num(r.boundaries as f64)),
                            ("total_cycles".into(), Json::Num(r.total_cycles as f64)),
                            ("rolled_back".into(), Json::Num(r.rolled_back_total as f64)),
                            ("torn".into(), Json::Num(r.torn_total as f64)),
                            ("violations".into(), Json::Num(r.violations.len() as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "violations".into(),
            Json::Arr(
                violations
                    .iter()
                    .map(|v| {
                        Json::obj([
                            ("invariant".into(), Json::Str(v.invariant.into())),
                            ("reproducer".into(), Json::Str(v.reproducer())),
                            ("detail".into(), Json::Str(v.detail.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "litmus_mismatches".into(),
            Json::Arr(
                mismatches
                    .iter()
                    .map(|m| Json::Str(m.to_string()))
                    .collect(),
            ),
        ),
    ]);
    write_json(&args, "crashfuzz", &doc);

    // --- Verdict. ---------------------------------------------------------
    if !smoke && litmus_points + fuzz_points < 1_000 {
        eprintln!(
            "crashfuzz: default grid swept only {} crash points (< 1000)",
            litmus_points + fuzz_points
        );
        return ExitCode::FAILURE;
    }
    if mismatches.is_empty() && violations.is_empty() {
        println!("crashfuzz: zero litmus mismatches, zero oracle violations");
        ExitCode::SUCCESS
    } else {
        for m in &mismatches {
            eprintln!("LITMUS MISMATCH: {m}");
        }
        for v in &violations {
            eprintln!("ORACLE VIOLATION: {v}");
            eprintln!("  reproduce with: {}", v.reproducer());
        }
        eprintln!(
            "crashfuzz FAILED: {} litmus mismatches, {} oracle violations",
            mismatches.len(),
            violations.len()
        );
        ExitCode::FAILURE
    }
}
