//! Crash-consistency fuzzer + persistency litmus driver.
//!
//! Two phases, both fanned through the sweep worker pool:
//!
//! 1. **Litmus**: every (litmus test × design) pair from
//!    [`pmemspec_crashtest::litmus_suite`] is swept over crash points;
//!    any persisted outcome outside the design's allowed set is an
//!    expectation mismatch.
//! 2. **Fuzz**: the full (benchmark × design × seed) grid — 8 workloads
//!    × 5 designs × the seed set — samples crash cycles (dense around
//!    fences/CLWBs/FASE markers/persist arrivals, sparse elsewhere),
//!    replays each design's recovery (undo or redo per workload), and
//!    checks the oracle invariants on the recovered image.
//!
//! Exit code is nonzero on any mismatch or violation; each failure
//! prints a one-line reproducer (`benchmark=… design=… seed=…
//! crash_cycle=…`). `PMEMSPEC_SMOKE=1` shrinks the fuzz grid (1 seed,
//! fewer FASEs and crash points) but always runs the full litmus suite.
//! The default grid samples well over 1,000 distinct crash points.
//!
//! **`--litmus-exhaustive`** replaces both phases with the exhaustive
//! model checker: every (litmus test × design) pair is enumerated over
//! *all* persist-order interleavings of the untimed abstract machine and
//! diffed against the axiomatic Px86-style allowed set
//! ([`pmemspec_crashtest::check_litmus_exhaustive`]). Writes byte-stable
//! `<out>/litmus_exhaustive.md` and `<out>/litmus_exhaustive.json`
//! (`--out DIR`, default `results`); pairs fan over the shared worker
//! pool and reduce in suite order, so pooled and `--serial` outputs are
//! byte-identical — CI diffs the two. Exit code is nonzero on any
//! forbidden outcome, deadlock, or finals-coverage failure; coverage
//! slack is reported but not fatal.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use pmemspec_bench::sweep::{parallel_map, worker_count};
use pmemspec_bench::{seeds, smoke_mode, write_json, BenchArgs, Json};
use pmemspec_crashtest::{
    check_litmus_exhaustive, litmus_suite, run_fuzz_job, run_litmus, FuzzJob,
};
use pmemspec_isa::DesignKind;
use pmemspec_workloads::{Benchmark, WorkloadParams};

/// Threads per fuzzed workload (2 keeps one grid point affordable while
/// still exercising locks and cross-core persists).
const THREADS: usize = 2;

fn fases_for(benchmark: Benchmark, smoke: bool) -> usize {
    let base = match benchmark {
        // Memcached FASEs are 1 KiB-value transactions — much longer.
        Benchmark::Memcached => 6,
        _ => 12,
    };
    if smoke {
        base / 2
    } else {
        base
    }
}

/// `--litmus-exhaustive` and `--out DIR` / `--out=DIR`, scanned from the
/// raw argument list ([`BenchArgs`] ignores flags it does not know).
fn extra_flags() -> (bool, PathBuf) {
    let mut exhaustive = false;
    let mut out = PathBuf::from("results");
    let mut iter = std::env::args().skip(1).peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--litmus-exhaustive" => exhaustive = true,
            "--out" => {
                if let Some(v) = iter.peek() {
                    if !v.starts_with('-') {
                        out = PathBuf::from(iter.next().expect("peeked"));
                    }
                }
            }
            _ => {
                if let Some(v) = arg.strip_prefix("--out=") {
                    out = PathBuf::from(v);
                }
            }
        }
    }
    (exhaustive, out)
}

/// The `--litmus-exhaustive` mode: enumerate every (shape × design)
/// pair, diff against the axiomatic oracle, and write the byte-stable
/// report pair. Returns the process exit code.
fn run_litmus_exhaustive(args: &BenchArgs, out: &PathBuf) -> ExitCode {
    use std::fmt::Write as _;

    let workers = worker_count(args);
    let started = Instant::now();

    let suite = litmus_suite();
    let pairs: Vec<(usize, DesignKind)> = (0..suite.len())
        .flat_map(|t| DesignKind::ALL_EXTENDED.map(|d| (t, d)))
        .collect();
    let reports = parallel_map(pairs.len(), workers, |i| {
        let (t, design) = pairs[i];
        check_litmus_exhaustive(&suite[t], design)
    });

    let mut md = String::new();
    let w = &mut md;
    writeln!(w, "# Exhaustive litmus model check").unwrap();
    writeln!(w).unwrap();
    writeln!(
        w,
        "Every (litmus shape x design) pair: all persist-order interleavings \
         of the untimed abstract machine, enumerated by explicit-state search \
         and diffed against the axiomatic Px86-style allowed set. `forbidden` \
         = produced but not allowed (simulator/model bug); `slack` = allowed \
         but never produced (coverage gap, reported, not fatal). See \
         DESIGN.md \"Axiomatic persistency oracle\" and EXPERIMENTS.md."
    )
    .unwrap();
    writeln!(w).unwrap();
    writeln!(
        w,
        "| test | design | class | states | transitions | outcomes | allowed | forbidden | slack | verdict |"
    )
    .unwrap();
    writeln!(w, "|---|---|---|---|---|---|---|---|---|---|").unwrap();
    let (mut total_states, mut total_outcomes) = (0usize, 0usize);
    let mut failures = 0usize;
    for r in &reports {
        let e = &r.enumerated;
        total_states += e.stats.states;
        total_outcomes += e.outcomes.len();
        if !r.is_ok() {
            failures += 1;
        }
        writeln!(
            w,
            "| {} | {} | {:?} | {} | {} | {} | {} | {} | {} | {} |",
            e.test,
            e.design.label(),
            e.design.persistency_class(),
            e.stats.states,
            e.stats.transitions,
            e.outcomes.len(),
            r.allowed.len(),
            r.forbidden.len(),
            r.slack.len(),
            if r.is_ok() { "ok" } else { "FAIL" },
        )
        .unwrap();
    }
    writeln!(w).unwrap();

    writeln!(w, "## Forbidden outcomes").unwrap();
    writeln!(w).unwrap();
    let forbidden: Vec<_> = reports.iter().flat_map(|r| r.forbidden.iter()).collect();
    if forbidden.is_empty() {
        writeln!(w, "none").unwrap();
    } else {
        for m in &forbidden {
            writeln!(w, "* `{m}`").unwrap();
        }
    }
    writeln!(w).unwrap();

    writeln!(w, "## Coverage slack").unwrap();
    writeln!(w).unwrap();
    let mut any_slack = false;
    for r in &reports {
        for s in &r.slack {
            any_slack = true;
            writeln!(
                w,
                "* {} on {}: allowed outcome {:?} never produced",
                r.enumerated.test,
                r.enumerated.design.label(),
                s
            )
            .unwrap();
        }
    }
    if !any_slack {
        writeln!(w, "none").unwrap();
    }
    writeln!(w).unwrap();

    writeln!(w, "## Deadlocks").unwrap();
    writeln!(w).unwrap();
    let deadlocks: Vec<_> = reports
        .iter()
        .flat_map(|r| {
            r.enumerated.deadlocks.iter().map(move |d| {
                format!(
                    "{} on {}: {d}",
                    r.enumerated.test,
                    r.enumerated.design.label()
                )
            })
        })
        .collect();
    if deadlocks.is_empty() {
        writeln!(w, "none").unwrap();
    } else {
        for d in &deadlocks {
            writeln!(w, "* {d}").unwrap();
        }
    }
    writeln!(w).unwrap();
    writeln!(
        w,
        "{} pairs, {} reachable states, {} distinct surviving-image outcomes, \
         {} failing pair(s)",
        reports.len(),
        total_states,
        total_outcomes,
        failures
    )
    .unwrap();

    print!("{md}");

    let json = Json::obj([
        ("pairs".into(), Json::Num(reports.len() as f64)),
        ("total_states".into(), Json::Num(total_states as f64)),
        ("total_outcomes".into(), Json::Num(total_outcomes as f64)),
        ("failures".into(), Json::Num(failures as f64)),
        (
            "reports".into(),
            Json::Arr(
                reports
                    .iter()
                    .map(|r| {
                        let e = &r.enumerated;
                        let outcomes = |set: &std::collections::BTreeSet<Vec<u64>>| {
                            Json::Arr(
                                set.iter()
                                    .map(|o| {
                                        Json::Arr(o.iter().map(|&v| Json::Num(v as f64)).collect())
                                    })
                                    .collect(),
                            )
                        };
                        Json::obj([
                            ("test".into(), Json::Str(e.test.into())),
                            ("design".into(), Json::Str(e.design.label().into())),
                            (
                                "class".into(),
                                Json::Str(format!("{:?}", e.design.persistency_class())),
                            ),
                            ("states".into(), Json::Num(e.stats.states as f64)),
                            ("transitions".into(), Json::Num(e.stats.transitions as f64)),
                            ("max_depth".into(), Json::Num(e.stats.max_depth as f64)),
                            (
                                "terminal_states".into(),
                                Json::Num(e.stats.terminal_states as f64),
                            ),
                            ("outcomes".into(), outcomes(&e.outcomes)),
                            ("terminal_outcomes".into(), outcomes(&e.terminal_outcomes)),
                            ("allowed".into(), outcomes(&r.allowed)),
                            (
                                "forbidden".into(),
                                Json::Arr(
                                    r.forbidden
                                        .iter()
                                        .map(|m| Json::Str(m.to_string()))
                                        .collect(),
                                ),
                            ),
                            (
                                "slack".into(),
                                Json::Arr(
                                    r.slack
                                        .iter()
                                        .map(|o| {
                                            Json::Arr(
                                                o.iter().map(|&v| Json::Num(v as f64)).collect(),
                                            )
                                        })
                                        .collect(),
                                ),
                            ),
                            ("deadlocks".into(), Json::Num(e.deadlocks.len() as f64)),
                            ("finals_ok".into(), Json::Bool(r.finals_ok)),
                            ("ok".into(), Json::Bool(r.is_ok())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);

    std::fs::create_dir_all(out).unwrap_or_else(|e| panic!("cannot create {}: {e}", out.display()));
    let md_path = out.join("litmus_exhaustive.md");
    std::fs::write(&md_path, &md)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", md_path.display()));
    let json_path = out.join("litmus_exhaustive.json");
    std::fs::write(&json_path, json.render_pretty())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", json_path.display()));

    // Wall clock goes to stderr so the checked-in report stays
    // byte-stable across regenerations.
    eprintln!(
        "crashfuzz --litmus-exhaustive: {:.1} s, {} workers, wrote {} and {}",
        started.elapsed().as_secs_f64(),
        workers,
        md_path.display(),
        json_path.display()
    );

    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        for m in &forbidden {
            eprintln!("MODEL MISMATCH: {m}");
        }
        for d in &deadlocks {
            eprintln!("DEADLOCK: {d}");
        }
        eprintln!("crashfuzz --litmus-exhaustive FAILED: {failures} pair(s)");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = BenchArgs::parse();
    let (exhaustive, out) = extra_flags();
    if exhaustive {
        return run_litmus_exhaustive(&args, &out);
    }
    let smoke = smoke_mode();
    let workers = worker_count(&args);
    let started = Instant::now();

    // --- Phase 1: the litmus suite (always in full). --------------------
    let suite = litmus_suite();
    let pairs: Vec<(usize, DesignKind)> = (0..suite.len())
        .flat_map(|t| DesignKind::ALL_EXTENDED.map(|d| (t, d)))
        .collect();
    let litmus_reports = parallel_map(pairs.len(), workers, |i| {
        let (t, design) = pairs[i];
        run_litmus(&suite[t], design)
    });

    println!("## Persistency litmus suite");
    println!();
    println!("| test | design | crash points | distinct outcomes | mismatches |");
    println!("|---|---|---|---|---|");
    let mut litmus_points = 0usize;
    let mut mismatches = Vec::new();
    for r in &litmus_reports {
        litmus_points += r.points;
        println!(
            "| {} | {} | {} | {} | {} |",
            r.test,
            r.design.label(),
            r.points,
            r.outcomes.len(),
            r.mismatches.len()
        );
        mismatches.extend(r.mismatches.iter().cloned());
    }
    println!();

    // --- Phase 2: the fuzz grid. ----------------------------------------
    let seeds = seeds();
    let crash_points = if smoke { 4 } else { 12 };
    let jobs: Vec<FuzzJob> = Benchmark::ALL
        .iter()
        .flat_map(|&benchmark| {
            DesignKind::ALL_EXTENDED.iter().flat_map(move |&design| {
                seeds.iter().map(move |&seed| FuzzJob {
                    benchmark,
                    design,
                    params: WorkloadParams::small(THREADS)
                        .with_fases(fases_for(benchmark, smoke))
                        .with_seed(seed),
                    crash_points,
                    fuzz_seed: pmemspec_isa::log_mix(
                        seed ^ ((benchmark as u64) << 8) ^ ((design as u64) << 16),
                    ),
                })
            })
        })
        .collect();
    let results = parallel_map(jobs.len(), workers, |i| run_fuzz_job(&jobs[i]));

    println!("## Crash-consistency fuzz grid");
    println!();
    println!(
        "{} workloads x {} designs x {} seed(s), {} threads, {} sampled crash \
         points per job (+1 completion point)",
        Benchmark::ALL.len(),
        DesignKind::ALL_EXTENDED.len(),
        seeds.len(),
        THREADS,
        crash_points
    );
    println!();
    println!("| benchmark | design | points | boundaries | rolled back | torn | max durable | violations |");
    println!("|---|---|---|---|---|---|---|---|");
    let mut fuzz_points = 0usize;
    let mut violations = Vec::new();
    for r in &results {
        fuzz_points += r.points;
        if r.seed == seeds[0] {
            // One row per (benchmark, design); aggregate the seeds.
            let group: Vec<_> = results
                .iter()
                .filter(|x| x.benchmark == r.benchmark && x.design == r.design)
                .collect();
            println!(
                "| {} | {} | {} | {} | {} | {} | {} | {} |",
                r.benchmark.label(),
                r.design.label(),
                group.iter().map(|x| x.points).sum::<usize>(),
                group.iter().map(|x| x.boundaries).sum::<usize>(),
                group.iter().map(|x| x.rolled_back_total).sum::<u64>(),
                group.iter().map(|x| x.torn_total).sum::<u64>(),
                group.iter().map(|x| x.max_durable).max().unwrap_or(0),
                group.iter().map(|x| x.violations.len()).sum::<usize>(),
            );
        }
        violations.extend(r.violations.iter().cloned());
    }
    println!();
    println!(
        "{} litmus crash points, {} fuzz crash points, {} total",
        litmus_points,
        fuzz_points,
        litmus_points + fuzz_points,
    );
    println!();
    // Wall clock goes to stderr so the checked-in markdown is
    // byte-stable across regenerations.
    eprintln!(
        "crashfuzz: {:.1} s, {} workers",
        started.elapsed().as_secs_f64(),
        workers
    );

    // --- JSON artifact. --------------------------------------------------
    let doc = Json::obj([
        ("smoke".into(), Json::Bool(smoke)),
        ("litmus_points".into(), Json::Num(litmus_points as f64)),
        ("fuzz_points".into(), Json::Num(fuzz_points as f64)),
        (
            "litmus".into(),
            Json::Arr(
                litmus_reports
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("test".into(), Json::Str(r.test.into())),
                            ("design".into(), Json::Str(r.design.label().into())),
                            ("points".into(), Json::Num(r.points as f64)),
                            (
                                "outcomes".into(),
                                Json::Arr(
                                    r.outcomes
                                        .iter()
                                        .map(|o| {
                                            Json::Arr(
                                                o.iter().map(|&v| Json::Num(v as f64)).collect(),
                                            )
                                        })
                                        .collect(),
                                ),
                            ),
                            ("mismatches".into(), Json::Num(r.mismatches.len() as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "fuzz".into(),
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("benchmark".into(), Json::Str(r.benchmark.label().into())),
                            ("design".into(), Json::Str(r.design.label().into())),
                            ("seed".into(), Json::Num(r.seed as f64)),
                            ("points".into(), Json::Num(r.points as f64)),
                            ("boundaries".into(), Json::Num(r.boundaries as f64)),
                            ("total_cycles".into(), Json::Num(r.total_cycles as f64)),
                            ("rolled_back".into(), Json::Num(r.rolled_back_total as f64)),
                            ("torn".into(), Json::Num(r.torn_total as f64)),
                            ("violations".into(), Json::Num(r.violations.len() as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "violations".into(),
            Json::Arr(
                violations
                    .iter()
                    .map(|v| {
                        Json::obj([
                            ("invariant".into(), Json::Str(v.invariant.into())),
                            ("reproducer".into(), Json::Str(v.reproducer())),
                            ("detail".into(), Json::Str(v.detail.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "litmus_mismatches".into(),
            Json::Arr(
                mismatches
                    .iter()
                    .map(|m| Json::Str(m.to_string()))
                    .collect(),
            ),
        ),
    ]);
    write_json(&args, "crashfuzz", &doc);

    // --- Verdict. ---------------------------------------------------------
    if !smoke && litmus_points + fuzz_points < 1_000 {
        eprintln!(
            "crashfuzz: default grid swept only {} crash points (< 1000)",
            litmus_points + fuzz_points
        );
        return ExitCode::FAILURE;
    }
    if mismatches.is_empty() && violations.is_empty() {
        println!("crashfuzz: zero litmus mismatches, zero oracle violations");
        ExitCode::SUCCESS
    } else {
        for m in &mismatches {
            eprintln!("LITMUS MISMATCH: {m}");
        }
        for v in &violations {
            eprintln!("ORACLE VIOLATION: {v}");
            eprintln!("  reproduce with: {}", v.reproducer());
        }
        eprintln!(
            "crashfuzz FAILED: {} litmus mismatches, {} oracle violations",
            mismatches.len(),
            violations.len()
        );
        ExitCode::FAILURE
    }
}
