//! `lint`: the static persistency verifier over the whole sweep pool.
//!
//! Runs every workload × every design through `pmemspec-analyze` — no
//! simulation — and writes the verdict:
//!
//! * `<out>/lint.md` — verdict and coverage tables (also printed).
//! * `<out>/lint.json` — per-point stats and findings.
//!
//! Exits non-zero if any finding fires: CI regenerates the artifacts,
//! diffs them against the committed ones, and the exit code doubles as
//! the gate on the pool staying clean.
//!
//! `--selftest` instead runs the mutation kill matrix: every seeded
//! mutant of [`pmemspec_analyze::mutate`] must be flagged with its
//! expected rule, and the dynamically-confirmable subset is replayed
//! through the exhaustive model checker, which must reach a persisted
//! image the intact program's axioms forbid. Non-zero exit on any miss.
//!
//! Flags: the shared set ([`BenchArgs`]) plus `--out DIR` (default
//! `results`).

use std::path::PathBuf;
use std::process::ExitCode;

use pmemspec_analyze::{analyze_program, mutate};
use pmemspec_bench::{lint, sweep, BenchArgs};
use pmemspec_crashtest::{axiomatic_allowed, enumerate_program};
use pmemspec_isa::lower_program;

/// `--out DIR` / `--out=DIR` and `--selftest`, scanned from the raw
/// argument list ([`BenchArgs`] ignores flags it does not know).
fn extra_flags() -> (PathBuf, bool) {
    let mut out = PathBuf::from("results");
    let mut selftest = false;
    let mut iter = std::env::args().skip(1).peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                if let Some(v) = iter.peek() {
                    if !v.starts_with('-') {
                        out = PathBuf::from(iter.next().expect("peeked"));
                    }
                }
            }
            "--selftest" => selftest = true,
            _ => {
                if let Some(v) = arg.strip_prefix("--out=") {
                    out = PathBuf::from(v);
                }
            }
        }
    }
    (out, selftest)
}

/// The mutation kill matrix: prints one line per mutant, returns the
/// number of misses.
fn selftest() -> usize {
    let corpus = mutate::corpus();
    let mut misses = 0;
    println!("# Mutation self-test: {} mutants", corpus.len());
    for m in &corpus {
        let report = analyze_program(&m.program, &m.meta);
        let caught = report.fired_rules().contains(&m.expected);
        let mut verdict = if caught { "caught" } else { "MISSED" };

        // Dynamic cross-confirmation: the model checker must exhibit an
        // outcome the intact lowering's axiomatic allowed set forbids.
        let mut dynamic = String::new();
        if let Some(observed) = m.observed {
            let intact = lower_program(m.design, &mutate::base_program());
            let allowed = axiomatic_allowed(&intact, &observed);
            let enumerated = enumerate_program(m.program.clone(), &observed);
            let forbidden: Vec<_> = enumerated
                .outcomes
                .iter()
                .filter(|o| !allowed.contains(*o))
                .collect();
            if forbidden.is_empty() {
                verdict = "MISSED (no forbidden outcome)";
            } else {
                dynamic = format!(", dynamic: exhibits forbidden {:?}", forbidden[0]);
            }
        }

        if !verdict.starts_with("caught") {
            misses += 1;
        }
        println!(
            "* {}: expected [{}] — {verdict}{dynamic}",
            m.name, m.expected
        );
    }
    println!("{} / {} killed", corpus.len() - misses, corpus.len());
    misses
}

fn main() -> ExitCode {
    let args = BenchArgs::parse();
    let (out, run_selftest) = extra_flags();

    if run_selftest {
        return if selftest() == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let workers = sweep::worker_count(&args);
    let points = lint::lint_grid(workers);

    let md = lint::markdown(&points);
    print!("{md}");
    std::fs::create_dir_all(&out)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", out.display()));
    let md_path = out.join("lint.md");
    std::fs::write(&md_path, &md)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", md_path.display()));
    let json_path = out.join("lint.json");
    std::fs::write(&json_path, lint::json_doc(&points).render_pretty())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", json_path.display()));
    eprintln!("wrote {}", md_path.display());
    eprintln!("wrote {}", json_path.display());

    if lint::total_findings(&points) == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
