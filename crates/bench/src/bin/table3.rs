//! Table 3: the simulator configuration.

use pmemspec_bench::{write_json, BenchArgs, Json};
use pmemspec_engine::SimConfig;

fn main() {
    let args = BenchArgs::parse();
    let cfg = SimConfig::asplos21(8);
    println!("## Table 3: simulator configuration");
    println!();
    println!("| Component | Configuration |");
    println!("|---|---|");
    println!(
        "| Core | 2 GHz, {}-entry store queue, 8 load MSHRs |",
        cfg.store_queue
    );
    println!(
        "| L1 D-cache | {} KB, {}-way, private, {} ns hit |",
        cfg.l1.size_bytes / 1024,
        cfg.l1.ways,
        cfg.l1.hit_latency.as_ns()
    );
    println!(
        "| L2 (LLC) | {} MB, {}-way, shared, {} ns hit |",
        cfg.llc.size_bytes / 1024 / 1024,
        cfg.llc.ways,
        cfg.llc.hit_latency.as_ns()
    );
    println!(
        "| PM controller | {}/{}-entry read/write queue, {}-entry speculation buffer |",
        cfg.pm.read_queue, cfg.pm.write_queue, cfg.pm.spec_buffer_entries
    );
    println!(
        "| PM | read = {} ns / write = {} ns |",
        cfg.pm.read_latency.as_ns(),
        cfg.pm.write_latency.as_ns()
    );
    println!("| Persist path | {} ns |", cfg.persist_path_latency.as_ns());
    println!();
    println!(
        "Speculation window (8 cores): {} ns",
        cfg.speculation_window().as_ns()
    );
    write_json(
        &args,
        "table3",
        &Json::obj([
            ("figure".into(), Json::Str("table3".into())),
            ("store_queue".into(), Json::Num(cfg.store_queue as f64)),
            ("l1_kb".into(), Json::Num((cfg.l1.size_bytes / 1024) as f64)),
            ("l1_ways".into(), Json::Num(cfg.l1.ways as f64)),
            (
                "llc_mb".into(),
                Json::Num((cfg.llc.size_bytes / 1024 / 1024) as f64),
            ),
            ("llc_ways".into(), Json::Num(cfg.llc.ways as f64)),
            ("pm_read_queue".into(), Json::Num(cfg.pm.read_queue as f64)),
            (
                "pm_write_queue".into(),
                Json::Num(cfg.pm.write_queue as f64),
            ),
            (
                "spec_buffer_entries".into(),
                Json::Num(cfg.pm.spec_buffer_entries as f64),
            ),
            (
                "pm_read_ns".into(),
                Json::Num(cfg.pm.read_latency.as_ns() as f64),
            ),
            (
                "pm_write_ns".into(),
                Json::Num(cfg.pm.write_latency.as_ns() as f64),
            ),
            (
                "persist_path_ns".into(),
                Json::Num(cfg.persist_path_latency.as_ns() as f64),
            ),
            (
                "speculation_window_ns_8c".into(),
                Json::Num(cfg.speculation_window().as_ns() as f64),
            ),
        ]),
    );
}
