//! Table 3: the simulator configuration.

use pmemspec_engine::SimConfig;

fn main() {
    let cfg = SimConfig::asplos21(8);
    println!("## Table 3: simulator configuration");
    println!();
    println!("| Component | Configuration |");
    println!("|---|---|");
    println!(
        "| Core | 2 GHz, {}-entry store queue, 8 load MSHRs |",
        cfg.store_queue
    );
    println!(
        "| L1 D-cache | {} KB, {}-way, private, {} ns hit |",
        cfg.l1.size_bytes / 1024,
        cfg.l1.ways,
        cfg.l1.hit_latency.as_ns()
    );
    println!(
        "| L2 (LLC) | {} MB, {}-way, shared, {} ns hit |",
        cfg.llc.size_bytes / 1024 / 1024,
        cfg.llc.ways,
        cfg.llc.hit_latency.as_ns()
    );
    println!(
        "| PM controller | {}/{}-entry read/write queue, {}-entry speculation buffer |",
        cfg.pm.read_queue, cfg.pm.write_queue, cfg.pm.spec_buffer_entries
    );
    println!(
        "| PM | read = {} ns / write = {} ns |",
        cfg.pm.read_latency.as_ns(),
        cfg.pm.write_latency.as_ns()
    );
    println!("| Persist path | {} ns |", cfg.persist_path_latency.as_ns());
    println!();
    println!(
        "Speculation window (8 cores): {} ns",
        cfg.speculation_window().as_ns()
    );
}
