//! WHISPER-style census of the benchmark suite: static FASE shapes plus
//! the dynamic inter-thread dependency counts that §8.4's store-
//! misspeculation-rarity argument rests on ("typical PM applications have
//! almost zero inter-thread dependencies in a 50 micro-second window").

use pmemspec_bench::sweep::generated_program;
use pmemspec_bench::{write_json, BenchArgs, Json, SweepSpec};
use pmemspec_engine::SimConfig;
use pmemspec_isa::DesignKind;
use pmemspec_workloads::{characterize, Benchmark, WorkloadParams};

fn fases_for(b: Benchmark) -> usize {
    if b == Benchmark::Memcached {
        100
    } else {
        300
    }
}

fn main() {
    let args = BenchArgs::parse();
    let csv = args.csv;
    let seed = WorkloadParams::small(8).seed;
    let mut spec = SweepSpec::new(vec![SimConfig::asplos21(8)]);
    for b in Benchmark::ALL {
        spec.add(0, b, DesignKind::PmemSpec, seed, fases_for(b));
    }
    let results = spec.run(&args);

    if csv {
        println!(
            "benchmark,fases,ops_per_fase,pm_stores_per_fase,pm_reads_per_fase,\
             ordering_points_per_fase,locks_per_fase,lines_written_per_fase,read_only_frac,\
             waw_in_window,waw_in_50us,raw_in_window"
        );
    } else {
        println!("## WHISPER-style workload census (8 threads)");
        println!();
        println!(
            "| benchmark | FASEs | ops/FASE | PM st/FASE | PM ld/FASE | orders/FASE | \
             locks/FASE | lines/FASE | read-only | WAW≤window | WAW≤50µs | RAW≤window |"
        );
        println!("|---|---|---|---|---|---|---|---|---|---|---|---|");
    }
    let mut rows_json = Vec::new();
    for b in Benchmark::ALL {
        let program = generated_program(b, 8, fases_for(b), seed);
        let p = characterize::profile(&program);
        let r = results.report(0, b, DesignKind::PmemSpec, seed);
        let waw_w = r.stats.counter("whisper.waw_within_spec_window");
        let waw_50 = r.stats.counter("whisper.waw_within_50us");
        let raw_w = r.stats.counter("whisper.raw_within_spec_window");
        if csv {
            println!(
                "{},{},{:.1},{:.1},{:.1},{:.1},{:.2},{:.1},{:.2},{},{},{}",
                b.label(),
                p.fases,
                p.ops_per_fase,
                p.pm_stores_per_fase,
                p.pm_reads_per_fase,
                p.ordering_points_per_fase,
                p.locks_per_fase,
                p.lines_written_per_fase,
                p.read_only_fraction,
                waw_w,
                waw_50,
                raw_w
            );
        } else {
            println!(
                "| {} | {} | {:.1} | {:.1} | {:.1} | {:.1} | {:.2} | {:.1} | {:.0}% | {} | {} | {} |",
                b.label(), p.fases, p.ops_per_fase, p.pm_stores_per_fase,
                p.pm_reads_per_fase, p.ordering_points_per_fase, p.locks_per_fase,
                p.lines_written_per_fase, p.read_only_fraction * 100.0, waw_w, waw_50, raw_w
            );
        }
        rows_json.push(Json::obj([
            ("benchmark".into(), Json::Str(b.label().into())),
            ("fases".into(), Json::Num(p.fases as f64)),
            ("ops_per_fase".into(), Json::Num(p.ops_per_fase)),
            ("pm_stores_per_fase".into(), Json::Num(p.pm_stores_per_fase)),
            ("pm_reads_per_fase".into(), Json::Num(p.pm_reads_per_fase)),
            (
                "ordering_points_per_fase".into(),
                Json::Num(p.ordering_points_per_fase),
            ),
            ("locks_per_fase".into(), Json::Num(p.locks_per_fase)),
            (
                "lines_written_per_fase".into(),
                Json::Num(p.lines_written_per_fase),
            ),
            ("read_only_frac".into(), Json::Num(p.read_only_fraction)),
            ("waw_in_window".into(), Json::Num(waw_w as f64)),
            ("waw_in_50us".into(), Json::Num(waw_50 as f64)),
            ("raw_in_window".into(), Json::Num(raw_w as f64)),
        ]));
    }
    if !csv {
        println!();
        println!(
            "WAW≤window counts same-line persists from different threads within the \
             speculation window (160 ns at 8 cores) — the store-misspeculation surface. \
             Store misspeculation additionally needs the later critical section's persist \
             to *arrive first*, which never happened in any run (§8.4)."
        );
    }
    write_json(
        &args,
        "characterize",
        &Json::obj([
            ("figure".into(), Json::Str("characterize".into())),
            ("rows".into(), Json::Arr(rows_json)),
        ]),
    );
}
