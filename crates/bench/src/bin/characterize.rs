//! WHISPER-style census of the benchmark suite: static FASE shapes plus
//! the dynamic inter-thread dependency counts that §8.4's store-
//! misspeculation-rarity argument rests on ("typical PM applications have
//! almost zero inter-thread dependencies in a 50 micro-second window").

use pmem_spec::run_program;
use pmemspec_bench::csv_mode;
use pmemspec_engine::SimConfig;
use pmemspec_isa::{lower_program, DesignKind};
use pmemspec_workloads::{characterize, Benchmark, WorkloadParams};

fn main() {
    let csv = csv_mode();
    if csv {
        println!(
            "benchmark,fases,ops_per_fase,pm_stores_per_fase,pm_reads_per_fase,\
             ordering_points_per_fase,locks_per_fase,lines_written_per_fase,read_only_frac,\
             waw_in_window,waw_in_50us,raw_in_window"
        );
    } else {
        println!("## WHISPER-style workload census (8 threads)");
        println!();
        println!(
            "| benchmark | FASEs | ops/FASE | PM st/FASE | PM ld/FASE | orders/FASE | \
             locks/FASE | lines/FASE | read-only | WAW≤window | WAW≤50µs | RAW≤window |"
        );
        println!("|---|---|---|---|---|---|---|---|---|---|---|---|");
    }
    for b in Benchmark::ALL {
        let fases = if b == Benchmark::Memcached { 100 } else { 300 };
        let params = WorkloadParams::small(8).with_fases(fases);
        let g = b.generate(&params);
        let p = characterize::profile(&g.program);
        let r = run_program(
            SimConfig::asplos21(8),
            lower_program(DesignKind::PmemSpec, &g.program),
        )
        .expect("valid run");
        let waw_w = r.stats.counter("whisper.waw_within_spec_window");
        let waw_50 = r.stats.counter("whisper.waw_within_50us");
        let raw_w = r.stats.counter("whisper.raw_within_spec_window");
        if csv {
            println!(
                "{},{},{:.1},{:.1},{:.1},{:.1},{:.2},{:.1},{:.2},{},{},{}",
                b.label(),
                p.fases,
                p.ops_per_fase,
                p.pm_stores_per_fase,
                p.pm_reads_per_fase,
                p.ordering_points_per_fase,
                p.locks_per_fase,
                p.lines_written_per_fase,
                p.read_only_fraction,
                waw_w,
                waw_50,
                raw_w
            );
        } else {
            println!(
                "| {} | {} | {:.1} | {:.1} | {:.1} | {:.1} | {:.2} | {:.1} | {:.0}% | {} | {} | {} |",
                b.label(), p.fases, p.ops_per_fase, p.pm_stores_per_fase,
                p.pm_reads_per_fase, p.ordering_points_per_fase, p.locks_per_fase,
                p.lines_written_per_fase, p.read_only_fraction * 100.0, waw_w, waw_50, raw_w
            );
        }
    }
    if !csv {
        println!();
        println!(
            "WAW≤window counts same-line persists from different threads within the \
             speculation window (160 ns at 8 cores) — the store-misspeculation surface. \
             Store misspeculation additionally needs the later critical section's persist \
             to *arrive first*, which never happened in any run (§8.4)."
        );
    }
}
