//! Figure 11: average throughput vs. speculation-buffer size in the
//! 8-core system.
//!
//! Paper: size 1 loses ~12.8% against the overflow-free 16-entry
//! configuration; no overflows at 16 entries. The buffer only fills on
//! dirty-LLC-eviction bursts, so this experiment runs with the scaled
//! LLC (see EXPERIMENTS.md).

use pmem_spec::run_program;
use pmemspec_bench::{csv_mode, default_fases, scaled_llc_config, SEEDS};
use pmemspec_isa::{lower_program, DesignKind};
use pmemspec_workloads::{Benchmark, WorkloadParams};

fn main() {
    let sizes = [1usize, 2, 4, 8, 16];
    let mut rows = Vec::new();
    for &size in &sizes {
        let cfg = scaled_llc_config(8).with_spec_buffer_entries(size);
        let mut sum_ln = 0.0;
        let mut n = 0u32;
        let mut overflows = 0u64;
        for b in Benchmark::ALL {
            let fases = default_fases(b) / 2;
            for &seed in &SEEDS {
                let params = WorkloadParams::small(8).with_fases(fases).with_seed(seed);
                let g = b.generate(&params);
                let r = run_program(cfg.clone(), lower_program(DesignKind::PmemSpec, &g.program))
                    .expect("valid run");
                sum_ln += r.throughput().ln();
                overflows += r.spec_buffer_overflows;
                n += 1;
            }
        }
        rows.push((size, (sum_ln / n as f64).exp(), overflows));
    }
    let base = rows.last().expect("sizes non-empty").1;
    if csv_mode() {
        println!("entries,relative_throughput,overflows");
        for (size, tput, ov) in &rows {
            println!("{size},{:.4},{ov}", tput / base);
        }
    } else {
        println!("## Figure 11: speculation-buffer size sensitivity (8 cores, PMEM-Spec)");
        println!();
        println!("| entries | throughput vs 16-entry | overflow pauses |");
        println!("|---|---|---|");
        for (size, tput, ov) in &rows {
            println!("| {size} | {:.3} | {ov} |", tput / base);
        }
    }
}
