//! Figure 11: average throughput vs. speculation-buffer size in the
//! 8-core system.
//!
//! Paper: size 1 loses ~12.8% against the overflow-free 16-entry
//! configuration; no overflows at 16 entries. The buffer only fills on
//! dirty-LLC-eviction bursts, so this experiment runs with the scaled
//! LLC (see EXPERIMENTS.md).

use pmemspec_bench::{
    default_fases, scaled_llc_config, seeds, write_json, BenchArgs, Json, SweepSpec,
};
use pmemspec_isa::DesignKind;
use pmemspec_workloads::Benchmark;

fn main() {
    let args = BenchArgs::parse();
    let sizes = [1usize, 2, 4, 8, 16];
    let mut spec = SweepSpec::new(
        sizes
            .iter()
            .map(|&size| scaled_llc_config(8).with_spec_buffer_entries(size))
            .collect(),
    );
    for ci in 0..sizes.len() {
        spec.add_grid(ci, &[DesignKind::PmemSpec], seeds(), |b| {
            default_fases(b) / 2
        });
    }
    let results = spec.run(&args);

    // Reduce in (size, benchmark, seed) order — the historical serial
    // loop's arithmetic, bit for bit.
    let mut rows = Vec::new();
    for (ci, &size) in sizes.iter().enumerate() {
        let mut sum_ln = 0.0;
        let mut n = 0u32;
        let mut overflows = 0u64;
        for b in Benchmark::ALL {
            for &seed in seeds() {
                let r = results.report(ci, b, DesignKind::PmemSpec, seed);
                sum_ln += r.throughput().ln();
                overflows += r.spec_buffer_overflows;
                n += 1;
            }
        }
        rows.push((size, (sum_ln / f64::from(n)).exp(), overflows));
    }
    let base = rows.last().expect("sizes non-empty").1;
    if args.csv {
        println!("entries,relative_throughput,overflows");
        for (size, tput, ov) in &rows {
            println!("{size},{:.4},{ov}", tput / base);
        }
    } else {
        println!("## Figure 11: speculation-buffer size sensitivity (8 cores, PMEM-Spec)");
        println!();
        println!("| entries | throughput vs 16-entry | overflow pauses |");
        println!("|---|---|---|");
        for (size, tput, ov) in &rows {
            println!("| {size} | {:.3} | {ov} |", tput / base);
        }
    }
    write_json(
        &args,
        "fig11",
        &Json::obj([
            ("figure".into(), Json::Str("fig11".into())),
            (
                "rows".into(),
                Json::Arr(
                    rows.iter()
                        .map(|&(size, tput, ov)| {
                            Json::obj([
                                ("entries".into(), Json::Num(size as f64)),
                                ("relative_throughput".into(), Json::Num(tput / base)),
                                ("overflows".into(), Json::Num(ov as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    );
}
