//! Figure 4 / §5.1.3 ablation: fetch-based vs eviction-based detection.
//!
//! The rejected first design monitors *fetched* blocks, so every store
//! miss's write-allocate fetch is flagged as a misspeculation by that
//! store's own persist — pure false positives that cost a recovery each.
//! The final eviction-based design is silent on the same program.

use pmem_spec::spec_buffer::DetectionMode;
use pmem_spec::{RecoveryPolicy, System};
use pmemspec_bench::sweep::{parallel_map, worker_count};
use pmemspec_bench::{write_json, BenchArgs, Json};
use pmemspec_engine::clock::Duration;
use pmemspec_engine::SimConfig;
use pmemspec_isa::{lower_program, DesignKind};
use pmemspec_workloads::synthetic;

fn main() {
    let args = BenchArgs::parse();
    // A 40 ns path (just above the 31 ns regular path) makes each store
    // miss's own persist trail its write-allocate fetch at the controller
    // — the situation Figure 4 describes. No true staleness exists at
    // this latency; only the strawman reacts.
    let cfg = SimConfig::asplos21(1).with_persist_path_latency(Duration::from_ns(40));
    let program = synthetic::store_miss_streamer(100, 8);
    let modes = [
        ("fetch-based (Figure 4 strawman)", DetectionMode::FetchBased),
        ("eviction-based (§5.1.4)", DetectionMode::EvictionBased),
    ];
    let reports = parallel_map(modes.len(), worker_count(&args), |i| {
        System::with_options(
            cfg.clone(),
            lower_program(DesignKind::PmemSpec, &program),
            RecoveryPolicy::Lazy,
            modes[i].1,
        )
        .expect("valid system")
        .run()
    });
    let rows: Vec<_> = modes.iter().map(|(label, _)| *label).zip(reports).collect();
    if args.csv {
        println!("mode,detections,true_stale,aborts,total_ns");
        for (label, r) in &rows {
            println!(
                "{label},{},{},{},{}",
                r.load_misspec_detected,
                r.stale_reads_ground_truth,
                r.fases_aborted,
                r.total_time.as_ns()
            );
        }
    } else {
        println!("## Detection-scheme ablation (store-miss streamer, 800 store misses)");
        println!();
        println!("| scheme | detections | true stale reads | recoveries | run time (ns) |");
        println!("|---|---|---|---|---|");
        for (label, r) in &rows {
            println!(
                "| {label} | {} | {} | {} | {} |",
                r.load_misspec_detected,
                r.stale_reads_ground_truth,
                r.fases_aborted,
                r.total_time.as_ns()
            );
        }
        let slowdown = rows[0].1.total_time.as_ns() as f64 / rows[1].1.total_time.as_ns() as f64;
        println!();
        println!("False misspeculation slows the strawman down {slowdown:.2}x.");
    }
    write_json(
        &args,
        "ablation_detect",
        &Json::obj([
            ("figure".into(), Json::Str("ablation_detect".into())),
            (
                "rows".into(),
                Json::Arr(
                    rows.iter()
                        .map(|(label, r)| {
                            Json::obj([
                                ("mode".into(), Json::Str((*label).into())),
                                (
                                    "detections".into(),
                                    Json::Num(r.load_misspec_detected as f64),
                                ),
                                (
                                    "true_stale".into(),
                                    Json::Num(r.stale_reads_ground_truth as f64),
                                ),
                                ("aborts".into(), Json::Num(r.fases_aborted as f64)),
                                ("total_ns".into(), Json::Num(r.total_time.as_ns() as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    );
}
