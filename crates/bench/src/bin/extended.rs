//! Extension beyond the paper: the Figure 9 comparison including
//! StrandWeaver (strand persistency — the design the paper's §9 singles
//! out as the strongest prior work but does not simulate).
//!
//! Expectation from the literature: StrandWeaver lands between HOPS and
//! PMEM-Spec — it removes cross-FASE drain dependencies (each FASE is a
//! strand) but still pays intra-strand persist-barriers between the log
//! and data phases, which PMEM-Spec's FIFO path eliminates entirely.

use pmemspec_bench::{normalized_suite_for, print_suite_for};
use pmemspec_engine::SimConfig;
use pmemspec_isa::DesignKind;

fn main() {
    let cfg = SimConfig::asplos21(8);
    let designs = DesignKind::ALL_EXTENDED;
    let rows = normalized_suite_for(&cfg, &designs);
    print_suite_for(
        "Extended comparison: five designs at 8 cores (normalized to IntelX86)",
        &designs,
        &rows,
    );
}
