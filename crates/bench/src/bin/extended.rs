//! Extension beyond the paper: the Figure 9 comparison including
//! StrandWeaver (strand persistency — the design the paper's §9 singles
//! out as the strongest prior work but does not simulate).
//!
//! Expectation from the literature: StrandWeaver lands between HOPS and
//! PMEM-Spec — it removes cross-FASE drain dependencies (each FASE is a
//! strand) but still pays intra-strand persist-barriers between the log
//! and data phases, which PMEM-Spec's FIFO path eliminates entirely.

use pmemspec_bench::{
    normalized_suite_with, print_suite_with, suite_cores, suite_json, write_json, BenchArgs,
};
use pmemspec_engine::SimConfig;
use pmemspec_isa::DesignKind;

fn main() {
    let args = BenchArgs::parse();
    let cores = suite_cores();
    let cfg = SimConfig::asplos21(cores);
    let designs = DesignKind::ALL_EXTENDED;
    let rows = normalized_suite_with(&cfg, &designs, &args);
    print_suite_with(
        &args,
        &format!("Extended comparison: five designs at {cores} cores (normalized to IntelX86)"),
        &designs,
        &rows,
    );
    write_json(
        &args,
        "extended",
        &suite_json("extended", cores, &designs, &rows),
    );
}
