//! CI smoke gate: runs the sweep harness on a reduced grid (2 cores,
//! 1 seed, 25 FASEs per thread — the `PMEMSPEC_SMOKE=1` grid) and
//! fails on either of two regressions against the checked-in
//! reference, `results/smoke_reference.json`:
//!
//! * a design's normalized **geomean** deviates more than 20%
//!   (relative) — the headline speedup story broke;
//! * a design's aggregate **cycle-bucket profile** (fraction of total
//!   core-cycles per stall bucket, summed over the whole benchmark
//!   suite) moves more than 3 percentage points (absolute) in any
//!   bucket — *where* the cycles go changed, which the geomean alone
//!   can miss (e.g. fence stalls traded one-for-one into persist-buffer
//!   pressure leaves the total flat).
//!
//! The simulator is deterministic, so on an unchanged tree both
//! deviations are exactly zero; the tolerances exist so a PR that
//! legitimately shifts performance a little does not have to touch the
//! reference, while one that breaks a design's cycle story fails
//! loudly.
//!
//! `smoke --update` regenerates the reference file (do this, and say
//! why, when a simulator change intentionally moves the numbers).

use std::process::ExitCode;

use pmem_spec::Bucket;
use pmemspec_bench::sweep::{parallel_map, run_point_profiled, worker_count};
use pmemspec_bench::{geomeans, print_suite, suite_rows, suite_spec, BenchArgs, Json, SEEDS};
use pmemspec_engine::SimConfig;
use pmemspec_isa::DesignKind;
use pmemspec_workloads::Benchmark;

const REFERENCE: &str = "results/smoke_reference.json";
const TOLERANCE: f64 = 0.20;
/// Absolute tolerance on a bucket's fraction of total cycles (3 points).
const BUCKET_TOLERANCE: f64 = 0.03;
const CORES: usize = 2;
const FASES: usize = 25;

/// Per-design aggregate bucket fractions over the full benchmark suite:
/// `sum over benchmarks of bucket cycles / sum of grand totals`, in
/// [`Bucket::ALL`] order. Profiling observes only, so this cannot
/// perturb the geomean grid it runs beside.
fn bucket_fractions(args: &BenchArgs, seed: u64) -> Vec<(DesignKind, [f64; Bucket::COUNT])> {
    let cfg = SimConfig::asplos21(CORES);
    let points: Vec<(DesignKind, Benchmark)> = DesignKind::ALL_EXTENDED
        .iter()
        .flat_map(|&d| Benchmark::ALL.iter().map(move |&b| (d, b)))
        .collect();
    let profiles = parallel_map(points.len(), worker_count(args), |i| {
        let (design, benchmark) = points[i];
        let (_, profile) = run_point_profiled(benchmark, design, &cfg, FASES, seed);
        let totals: Vec<u64> = Bucket::ALL
            .iter()
            .map(|&b| profile.bucket_total(b))
            .collect();
        (profile.grand_total(), totals)
    });
    DesignKind::ALL_EXTENDED
        .iter()
        .map(|&design| {
            let mut grand = 0u64;
            let mut sums = [0u64; Bucket::COUNT];
            for (i, (d, _)) in points.iter().enumerate() {
                if *d == design {
                    let (g, totals) = &profiles[i];
                    grand += g;
                    for (s, t) in sums.iter_mut().zip(totals) {
                        *s += t;
                    }
                }
            }
            let mut fractions = [0.0f64; Bucket::COUNT];
            for (f, &s) in fractions.iter_mut().zip(&sums) {
                *f = s as f64 / grand as f64;
            }
            (design, fractions)
        })
        .collect()
}

fn main() -> ExitCode {
    let args = BenchArgs::parse();
    let update = std::env::args().any(|a| a == "--update");
    let seeds = &SEEDS[..1];

    let cfg = SimConfig::asplos21(CORES);
    let spec = suite_spec(&cfg, &DesignKind::ALL, seeds, |_| FASES);
    let results = spec.run(&args);
    let rows = suite_rows(&results, &DesignKind::ALL, seeds, |_| FASES);
    print_suite(
        &args,
        &format!(
            "Smoke grid: {CORES} cores, {} seed, {FASES} FASEs",
            seeds.len()
        ),
        &rows,
    );
    let g = geomeans(&rows);
    let buckets = bucket_fractions(&args, seeds[0]);

    let doc = Json::obj([
        ("cores".into(), Json::Num(CORES as f64)),
        ("seeds".into(), Json::Num(seeds.len() as f64)),
        ("fases".into(), Json::Num(FASES as f64)),
        (
            "geomeans".into(),
            Json::obj(
                DesignKind::ALL
                    .iter()
                    .zip(&g)
                    .map(|(d, &v)| (d.label().to_string(), Json::Num(v))),
            ),
        ),
        (
            "buckets".into(),
            Json::obj(buckets.iter().map(|(d, fractions)| {
                (
                    d.label().to_string(),
                    Json::obj(
                        Bucket::ALL
                            .iter()
                            .zip(fractions)
                            .map(|(b, &v)| (b.label().to_string(), Json::Num(v))),
                    ),
                )
            })),
        ),
    ]);

    if update {
        std::fs::create_dir_all("results").expect("create results/");
        std::fs::write(REFERENCE, doc.render_pretty())
            .unwrap_or_else(|e| panic!("cannot write {REFERENCE}: {e}"));
        println!("updated {REFERENCE}");
        return ExitCode::SUCCESS;
    }

    let reference = match std::fs::read_to_string(REFERENCE) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {REFERENCE}: {e} (run `smoke --update` to create it)");
            return ExitCode::FAILURE;
        }
    };
    let reference = match Json::parse(&reference) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("{REFERENCE} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(ref_geomeans) = reference.get("geomeans") else {
        eprintln!("{REFERENCE} has no `geomeans` object");
        return ExitCode::FAILURE;
    };

    println!(
        "## Smoke gate vs {REFERENCE} (tolerance {:.0}%)",
        TOLERANCE * 100.0
    );
    println!();
    println!("| design | geomean | reference | deviation | verdict |");
    println!("|---|---|---|---|---|");
    let mut failed = false;
    for (d, &measured) in DesignKind::ALL.iter().zip(&g) {
        let Some(expected) = ref_geomeans.get(d.label()).and_then(Json::as_f64) else {
            println!("| {} | {measured:.4} | (missing) | — | FAIL |", d.label());
            failed = true;
            continue;
        };
        let deviation = (measured - expected).abs() / expected;
        let verdict = if deviation > TOLERANCE { "FAIL" } else { "ok" };
        failed |= deviation > TOLERANCE;
        println!(
            "| {} | {measured:.4} | {expected:.4} | {:.1}% | {verdict} |",
            d.label(),
            deviation * 100.0
        );
    }
    println!();

    // --- Per-bucket profile gate. ----------------------------------------
    println!(
        "## Per-bucket profile gate vs {REFERENCE} (tolerance {:.0} points)",
        BUCKET_TOLERANCE * 100.0
    );
    println!();
    println!("| design | max bucket shift | bucket | verdict |");
    println!("|---|---|---|---|");
    let ref_buckets = reference.get("buckets");
    for (design, fractions) in &buckets {
        let Some(expected) = ref_buckets.and_then(|b| b.get(design.label())) else {
            println!(
                "| {} | — | (no reference; run `smoke --update`) | FAIL |",
                design.label()
            );
            failed = true;
            continue;
        };
        let mut worst = 0.0f64;
        let mut worst_bucket = Bucket::ALL[0];
        let mut missing = false;
        for (bucket, &measured) in Bucket::ALL.iter().zip(fractions) {
            let Some(want) = expected.get(bucket.label()).and_then(Json::as_f64) else {
                missing = true;
                continue;
            };
            let delta = (measured - want).abs();
            if delta > worst {
                worst = delta;
                worst_bucket = *bucket;
            }
        }
        let bad = worst > BUCKET_TOLERANCE || missing;
        failed |= bad;
        println!(
            "| {} | {:.2} points | {} | {} |",
            design.label(),
            worst * 100.0,
            if missing {
                "(bucket missing from reference)"
            } else {
                worst_bucket.label()
            },
            if bad { "FAIL" } else { "ok" },
        );
    }
    println!();

    if failed {
        println!(
            "smoke gate FAILED: a design's geomean moved more than {:.0}% or a \
             cycle bucket's share moved more than {:.0} points — if \
             intentional, regenerate the reference with `smoke --update`",
            TOLERANCE * 100.0,
            BUCKET_TOLERANCE * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!("smoke gate passed (geomeans and bucket profiles)");
        ExitCode::SUCCESS
    }
}
