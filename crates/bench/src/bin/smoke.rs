//! CI smoke gate: runs the sweep harness on a reduced grid (2 cores,
//! 1 seed, 25 FASEs per thread — the `PMEMSPEC_SMOKE=1` grid) and
//! fails if any design's normalized geomean deviates more than 20%
//! from the checked-in reference, `results/smoke_reference.json`.
//!
//! The simulator is deterministic, so on an unchanged tree the
//! deviation is exactly zero; the tolerance exists so a PR that
//! legitimately shifts performance a little does not have to touch the
//! reference, while one that breaks a design's speedup story fails
//! loudly.
//!
//! `smoke --update` regenerates the reference file (do this, and say
//! why, when a simulator change intentionally moves the numbers).

use std::process::ExitCode;

use pmemspec_bench::{geomeans, print_suite, suite_rows, suite_spec, BenchArgs, Json, SEEDS};
use pmemspec_engine::SimConfig;
use pmemspec_isa::DesignKind;

const REFERENCE: &str = "results/smoke_reference.json";
const TOLERANCE: f64 = 0.20;
const CORES: usize = 2;
const FASES: usize = 25;

fn main() -> ExitCode {
    let args = BenchArgs::parse();
    let update = std::env::args().any(|a| a == "--update");
    let seeds = &SEEDS[..1];

    let cfg = SimConfig::asplos21(CORES);
    let spec = suite_spec(&cfg, &DesignKind::ALL, seeds, |_| FASES);
    let results = spec.run(&args);
    let rows = suite_rows(&results, &DesignKind::ALL, seeds, |_| FASES);
    print_suite(
        &args,
        &format!(
            "Smoke grid: {CORES} cores, {} seed, {FASES} FASEs",
            seeds.len()
        ),
        &rows,
    );
    let g = geomeans(&rows);

    let doc = Json::obj([
        ("cores".into(), Json::Num(CORES as f64)),
        ("seeds".into(), Json::Num(seeds.len() as f64)),
        ("fases".into(), Json::Num(FASES as f64)),
        (
            "geomeans".into(),
            Json::obj(
                DesignKind::ALL
                    .iter()
                    .zip(&g)
                    .map(|(d, &v)| (d.label().to_string(), Json::Num(v))),
            ),
        ),
    ]);

    if update {
        std::fs::create_dir_all("results").expect("create results/");
        std::fs::write(REFERENCE, doc.render_pretty())
            .unwrap_or_else(|e| panic!("cannot write {REFERENCE}: {e}"));
        println!("updated {REFERENCE}");
        return ExitCode::SUCCESS;
    }

    let reference = match std::fs::read_to_string(REFERENCE) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {REFERENCE}: {e} (run `smoke --update` to create it)");
            return ExitCode::FAILURE;
        }
    };
    let reference = match Json::parse(&reference) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("{REFERENCE} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(ref_geomeans) = reference.get("geomeans") else {
        eprintln!("{REFERENCE} has no `geomeans` object");
        return ExitCode::FAILURE;
    };

    println!(
        "## Smoke gate vs {REFERENCE} (tolerance {:.0}%)",
        TOLERANCE * 100.0
    );
    println!();
    println!("| design | geomean | reference | deviation | verdict |");
    println!("|---|---|---|---|---|");
    let mut failed = false;
    for (d, &measured) in DesignKind::ALL.iter().zip(&g) {
        let Some(expected) = ref_geomeans.get(d.label()).and_then(Json::as_f64) else {
            println!("| {} | {measured:.4} | (missing) | — | FAIL |", d.label());
            failed = true;
            continue;
        };
        let deviation = (measured - expected).abs() / expected;
        let verdict = if deviation > TOLERANCE { "FAIL" } else { "ok" };
        failed |= deviation > TOLERANCE;
        println!(
            "| {} | {measured:.4} | {expected:.4} | {:.1}% | {verdict} |",
            d.label(),
            deviation * 100.0
        );
    }
    println!();
    if failed {
        println!(
            "smoke gate FAILED: a design's geomean moved more than {:.0}% — \
             if intentional, regenerate the reference with `smoke --update`",
            TOLERANCE * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!("smoke gate passed");
        ExitCode::SUCCESS
    }
}
