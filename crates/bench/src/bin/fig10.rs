//! Figure 10: the same comparison in 16-/32-/64-core systems.
//!
//! Paper: PMEM-Spec outperforms the baseline/HOPS by 18.8%/8.2% (16),
//! 18.2%/8.0% (32) and 17.1%/10% (64); DPO degrades with core count.

use pmemspec_bench::{
    geomeans, normalized_suite_with, print_suite, suite_json, write_json, BenchArgs, Json,
};
use pmemspec_engine::SimConfig;
use pmemspec_isa::DesignKind;

fn main() {
    let args = BenchArgs::parse();
    let mut sections = Vec::new();
    for cores in [16usize, 32, 64] {
        let cfg = SimConfig::asplos21(cores);
        let rows = normalized_suite_with(&cfg, &DesignKind::ALL, &args);
        print_suite(&args, &format!("Figure 10: {cores}-core throughput"), &rows);
        let g = geomeans(&rows);
        println!(
            "PMEM-Spec vs baseline: +{:.1}%  |  PMEM-Spec vs HOPS: +{:.1}%",
            (g[3] - 1.0) * 100.0,
            (g[3] / g[2] - 1.0) * 100.0
        );
        println!();
        sections.push(suite_json("fig10", cores, &DesignKind::ALL, &rows));
    }
    write_json(
        &args,
        "fig10",
        &Json::obj([
            ("figure".into(), Json::Str("fig10".into())),
            ("sections".into(), Json::Arr(sections)),
        ]),
    );
}
