//! Figure 10: the same comparison in 16-/32-/64-core systems.
//!
//! Paper: PMEM-Spec outperforms the baseline/HOPS by 18.8%/8.2% (16),
//! 18.2%/8.0% (32) and 17.1%/10% (64); DPO degrades with core count.

use pmemspec_bench::{geomeans, normalized_suite, print_suite};
use pmemspec_engine::SimConfig;

fn main() {
    for cores in [16usize, 32, 64] {
        let cfg = SimConfig::asplos21(cores);
        let rows = normalized_suite(&cfg);
        print_suite(&format!("Figure 10: {cores}-core throughput"), &rows);
        let g = geomeans(&rows);
        println!(
            "PMEM-Spec vs baseline: +{:.1}%  |  PMEM-Spec vs HOPS: +{:.1}%",
            (g[3] - 1.0) * 100.0,
            (g[3] / g[2] - 1.0) * 100.0
        );
        println!();
    }
}
