//! §8.4: misspeculation rates.
//!
//! Part 1 — the real benchmark suite never misspeculates at the default
//! configuration.
//! Part 2 — the synthetic inducer (store; evict all the way to PM;
//! reload) produces load misspeculation only at several times the
//! realistic persist-path latency, and recovery preserves every FASE.

use pmem_spec::{run_program, System};
use pmemspec_bench::csv_mode;
use pmemspec_engine::clock::Duration;
use pmemspec_engine::SimConfig;
use pmemspec_isa::{lower_program, DesignKind};
use pmemspec_workloads::{synthetic, Benchmark, WorkloadParams};

fn main() {
    let csv = csv_mode();
    if !csv {
        println!("## §8.4 part 1: misspeculation on the benchmark suite (default config)");
        println!();
        println!("| benchmark | load misspec | store misspec | stale reads (ground truth) |");
        println!("|---|---|---|---|");
    } else {
        println!("benchmark,load_misspec,store_misspec,stale_ground_truth");
    }
    for b in Benchmark::ALL {
        let fases = if b == Benchmark::Memcached { 60 } else { 200 };
        let params = WorkloadParams::small(8).with_fases(fases);
        let g = b.generate(&params);
        let r = run_program(
            SimConfig::asplos21(8),
            lower_program(DesignKind::PmemSpec, &g.program),
        )
        .expect("valid run");
        if csv {
            println!(
                "{},{},{},{}",
                b.label(),
                r.load_misspec_detected,
                r.store_misspec_detected,
                r.stale_reads_ground_truth
            );
        } else {
            println!(
                "| {} | {} | {} | {} |",
                b.label(),
                r.load_misspec_detected,
                r.store_misspec_detected,
                r.stale_reads_ground_truth
            );
        }
    }

    if !csv {
        println!();
        println!("## §8.4 part 2: synthetic inducer vs persist-path latency");
        println!();
        println!(
            "| persist path | detected | true stale reads | FASEs aborted | FASEs committed |"
        );
        println!("|---|---|---|---|---|");
    } else {
        println!("persist_path_ns,detected,stale,aborted,committed");
    }
    for mult in [1u64, 2, 5, 10, 25, 50] {
        let ns = 20 * mult;
        let cfg = SimConfig::asplos21(1).with_persist_path_latency(Duration::from_ns(ns));
        let p = synthetic::load_misspec_inducer(&cfg, 50);
        let r = System::new(cfg, lower_program(DesignKind::PmemSpec, &p))
            .expect("valid system")
            .run();
        if csv {
            println!(
                "{ns},{},{},{},{}",
                r.load_misspec_detected,
                r.stale_reads_ground_truth,
                r.fases_aborted,
                r.fases_committed
            );
        } else {
            println!(
                "| {ns} ns ({mult}x) | {} | {} | {} | {} |",
                r.load_misspec_detected,
                r.stale_reads_ground_truth,
                r.fases_aborted,
                r.fases_committed
            );
        }
    }
}
