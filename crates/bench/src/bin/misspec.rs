//! §8.4: misspeculation rates.
//!
//! Part 1 — the real benchmark suite never misspeculates at the default
//! configuration.
//! Part 2 — the synthetic inducer (store; evict all the way to PM;
//! reload) produces load misspeculation only at several times the
//! realistic persist-path latency, and recovery preserves every FASE.

use pmem_spec::System;
use pmemspec_bench::sweep::{parallel_map, worker_count};
use pmemspec_bench::{write_json, BenchArgs, Json, SweepSpec};
use pmemspec_engine::clock::Duration;
use pmemspec_engine::SimConfig;
use pmemspec_isa::{lower_program, DesignKind};
use pmemspec_workloads::{synthetic, Benchmark, WorkloadParams};

fn main() {
    let args = BenchArgs::parse();
    let csv = args.csv;

    // Part 1: the whole suite at the default seed, fanned out across
    // workers.
    let seed = WorkloadParams::small(8).seed;
    let mut spec = SweepSpec::new(vec![SimConfig::asplos21(8)]);
    for b in Benchmark::ALL {
        let fases = if b == Benchmark::Memcached { 60 } else { 200 };
        spec.add(0, b, DesignKind::PmemSpec, seed, fases);
    }
    let results = spec.run(&args);

    if !csv {
        println!("## §8.4 part 1: misspeculation on the benchmark suite (default config)");
        println!();
        println!("| benchmark | load misspec | store misspec | stale reads (ground truth) |");
        println!("|---|---|---|---|");
    } else {
        println!("benchmark,load_misspec,store_misspec,stale_ground_truth");
    }
    let mut suite_json = Vec::new();
    for b in Benchmark::ALL {
        let r = results.report(0, b, DesignKind::PmemSpec, seed);
        if csv {
            println!(
                "{},{},{},{}",
                b.label(),
                r.load_misspec_detected,
                r.store_misspec_detected,
                r.stale_reads_ground_truth
            );
        } else {
            println!(
                "| {} | {} | {} | {} |",
                b.label(),
                r.load_misspec_detected,
                r.store_misspec_detected,
                r.stale_reads_ground_truth
            );
        }
        suite_json.push(Json::obj([
            ("benchmark".into(), Json::Str(b.label().into())),
            (
                "load_misspec".into(),
                Json::Num(r.load_misspec_detected as f64),
            ),
            (
                "store_misspec".into(),
                Json::Num(r.store_misspec_detected as f64),
            ),
            (
                "stale_ground_truth".into(),
                Json::Num(r.stale_reads_ground_truth as f64),
            ),
        ]));
    }

    // Part 2: the synthetic inducer across persist-path latencies —
    // independent single-core systems, also run on the pool.
    let mults = [1u64, 2, 5, 10, 25, 50];
    let reports = parallel_map(mults.len(), worker_count(&args), |i| {
        let ns = 20 * mults[i];
        let cfg = SimConfig::asplos21(1).with_persist_path_latency(Duration::from_ns(ns));
        let p = synthetic::load_misspec_inducer(&cfg, 50);
        System::new(cfg, lower_program(DesignKind::PmemSpec, &p))
            .expect("valid system")
            .run()
    });

    if !csv {
        println!();
        println!("## §8.4 part 2: synthetic inducer vs persist-path latency");
        println!();
        println!(
            "| persist path | detected | true stale reads | FASEs aborted | FASEs committed |"
        );
        println!("|---|---|---|---|---|");
    } else {
        println!("persist_path_ns,detected,stale,aborted,committed");
    }
    let mut inducer_json = Vec::new();
    for (&mult, r) in mults.iter().zip(&reports) {
        let ns = 20 * mult;
        if csv {
            println!(
                "{ns},{},{},{},{}",
                r.load_misspec_detected,
                r.stale_reads_ground_truth,
                r.fases_aborted,
                r.fases_committed
            );
        } else {
            println!(
                "| {ns} ns ({mult}x) | {} | {} | {} | {} |",
                r.load_misspec_detected,
                r.stale_reads_ground_truth,
                r.fases_aborted,
                r.fases_committed
            );
        }
        inducer_json.push(Json::obj([
            ("persist_path_ns".into(), Json::Num(ns as f64)),
            ("detected".into(), Json::Num(r.load_misspec_detected as f64)),
            ("stale".into(), Json::Num(r.stale_reads_ground_truth as f64)),
            ("aborted".into(), Json::Num(r.fases_aborted as f64)),
            ("committed".into(), Json::Num(r.fases_committed as f64)),
        ]));
    }
    write_json(
        &args,
        "misspec",
        &Json::obj([
            ("figure".into(), Json::Str("misspec".into())),
            ("suite".into(), Json::Arr(suite_json)),
            ("inducer".into(), Json::Arr(inducer_json)),
        ]),
    );
}
