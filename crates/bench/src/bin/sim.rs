//! General-purpose simulator driver.
//!
//! ```text
//! sim --bench tatp --design pmem-spec --cores 8 --fases 400
//! sim --bench memcached --design hops --persist-path-ns 60 --csv
//! sim --bench tpcc --design pmem-spec --controllers 4
//! sim --bench hashmap --design pmem-spec --trace /tmp/trace.json
//! sim --list
//! ```
//!
//! Flags: `--bench <name>` `--design <name>` `--cores N` `--fases N`
//! `--seed N` `--persist-path-ns N` `--spec-buffer N` `--controllers N`
//! `--unordered-network` `--eager-recovery` `--trace <path>` `--csv`
//! `--list`.

use std::process::ExitCode;

use pmem_spec::spec_buffer::DetectionMode;
use pmem_spec::{RecoveryPolicy, System};
use pmemspec_engine::clock::Duration;
use pmemspec_engine::config::PmcNetworkOrder;
use pmemspec_engine::SimConfig;
use pmemspec_isa::{lower_program, DesignKind};
use pmemspec_workloads::{Benchmark, WorkloadParams};

struct Options {
    bench: Benchmark,
    design: DesignKind,
    cores: usize,
    fases: usize,
    seed: u64,
    persist_path_ns: Option<u64>,
    spec_buffer: Option<usize>,
    controllers: usize,
    unordered_network: bool,
    eager: bool,
    trace: Option<String>,
    csv: bool,
    json: bool,
}

fn parse_design(name: &str) -> Option<DesignKind> {
    let name = name.to_ascii_lowercase().replace(['-', '_'], "");
    DesignKind::ALL_EXTENDED
        .into_iter()
        .find(|d| d.label().to_ascii_lowercase().replace(['-', '_'], "") == name)
}

fn parse_bench(name: &str) -> Option<Benchmark> {
    let name = name.to_ascii_lowercase().replace(['-', '_'], "");
    Benchmark::ALL
        .into_iter()
        .find(|b| b.label().to_ascii_lowercase().replace(['-', '_'], "") == name)
}

fn print_list() {
    println!("benchmarks:");
    for b in Benchmark::ALL {
        println!("  {}", b.label());
    }
    println!("designs:");
    for d in DesignKind::ALL_EXTENDED {
        println!("  {}", d.label());
    }
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut opts = Options {
        bench: Benchmark::Hashmap,
        design: DesignKind::PmemSpec,
        cores: 8,
        fases: 200,
        seed: 42,
        persist_path_ns: None,
        spec_buffer: None,
        controllers: 1,
        unordered_network: false,
        eager: false,
        trace: None,
        csv: false,
        json: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--list" => {
                print_list();
                return Ok(None);
            }
            "--bench" => {
                let v = value("--bench")?;
                opts.bench = parse_bench(&v).ok_or_else(|| format!("unknown benchmark `{v}`"))?;
            }
            "--design" => {
                let v = value("--design")?;
                opts.design = parse_design(&v).ok_or_else(|| format!("unknown design `{v}`"))?;
            }
            "--cores" => opts.cores = value("--cores")?.parse().map_err(|e| format!("{e}"))?,
            "--fases" => opts.fases = value("--fases")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--persist-path-ns" => {
                opts.persist_path_ns = Some(
                    value("--persist-path-ns")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                );
            }
            "--spec-buffer" => {
                opts.spec_buffer = Some(
                    value("--spec-buffer")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                );
            }
            "--controllers" => {
                opts.controllers = value("--controllers")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--unordered-network" => opts.unordered_network = true,
            "--eager-recovery" => opts.eager = true,
            "--trace" => opts.trace = Some(value("--trace")?),
            "--csv" => opts.csv = true,
            "--json" => opts.json = true,
            "--help" | "-h" => {
                println!(
                    "usage: sim [--bench NAME] [--design NAME] [--cores N] [--fases N] \
                     [--seed N]\n           [--persist-path-ns N] [--spec-buffer N] \
                     [--controllers N] [--unordered-network]\n           \
                     [--eager-recovery] [--trace PATH] [--csv] [--json] [--list]"
                );
                return Ok(None);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut cfg = SimConfig::asplos21(opts.cores).with_seed(opts.seed);
    if let Some(ns) = opts.persist_path_ns {
        cfg = cfg.with_persist_path_latency(Duration::from_ns(ns));
    }
    if let Some(entries) = opts.spec_buffer {
        cfg = cfg.with_spec_buffer_entries(entries);
    }
    if opts.controllers > 1 || opts.unordered_network {
        let order = if opts.unordered_network {
            PmcNetworkOrder::Unordered
        } else {
            PmcNetworkOrder::Fifo
        };
        cfg = cfg.with_pm_controllers(opts.controllers.max(1), order);
    }
    let policy = if opts.eager {
        RecoveryPolicy::Eager
    } else {
        RecoveryPolicy::Lazy
    };

    let params = WorkloadParams::small(opts.cores)
        .with_fases(opts.fases)
        .with_seed(opts.seed);
    let generated = opts.bench.generate(&params);
    let program = lower_program(opts.design, &generated.program);
    let mut system = match System::with_options(cfg, program, policy, DetectionMode::EvictionBased)
    {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.trace.is_some() {
        system = system.with_trace();
    }
    let (report, trace) = system.run_traced();

    if let Some(path) = &opts.trace {
        match std::fs::File::create(path).and_then(|f| trace.write_chrome_trace(f)) {
            Ok(()) => eprintln!("wrote {} trace events to {path}", trace.len()),
            Err(e) => {
                eprintln!("error writing trace: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if opts.json {
        println!("{}", report.to_json());
    } else if opts.csv {
        println!(
            "bench,design,cores,fases,seed,total_ns,throughput,aborted,load_misspec,store_misspec,pm_reads,pm_writes"
        );
        println!(
            "{},{},{},{},{},{},{:.0},{},{},{},{},{}",
            opts.bench.label(),
            opts.design.label(),
            opts.cores,
            opts.fases,
            opts.seed,
            report.total_time.as_ns(),
            report.throughput(),
            report.fases_aborted,
            report.load_misspec_detected,
            report.store_misspec_detected,
            report.pm_reads,
            report.pm_writes,
        );
    } else {
        println!("benchmark       = {}", opts.bench.label());
        println!("{report}");
        for (k, v) in report.stats.counters() {
            println!("  {k} = {v}");
        }
    }
    ExitCode::SUCCESS
}
