//! The static-lint sweep: every workload × every design through the
//! persistency verifier ([`pmemspec_analyze`]), no simulation.
//!
//! The grid is fixed (8 threads, full-size FASE counts, one seed) and
//! independent of [`crate::smoke_mode`], so `results/lint.{md,json}`
//! are byte-stable across environments; CI regenerates them and diffs.
//! Rendering walks the grid in spec order, so pooled and serial runs
//! produce identical bytes (pinned by `tests/static_lints.rs`).

use pmemspec_analyze::{analyze_program, LintReport, Rule};
use pmemspec_isa::{lower_program_with_meta, DesignKind};
use pmemspec_workloads::Benchmark;

use crate::{sweep, Json};

/// Threads per workload program (the main suite's core count).
pub const LINT_THREADS: usize = 8;

/// Workload generation seed (the suite's first seed; the analyzer's
/// verdict is seed-independent, the artifact pins one for stability).
pub const LINT_SEED: u64 = 11;

/// FASEs per thread: the full-size suite counts, not the smoke grid.
pub fn lint_fases(benchmark: Benchmark) -> usize {
    match benchmark {
        Benchmark::Memcached => 120,
        _ => 400,
    }
}

/// One analyzed grid point.
pub struct LintPoint {
    /// Design the workload was lowered for.
    pub design: DesignKind,
    /// The workload.
    pub benchmark: Benchmark,
    /// FASEs per thread analyzed.
    pub fases: usize,
    /// The analyzer's verdict.
    pub report: LintReport,
}

/// Analyzes the full grid on `workers` pool threads, in spec order
/// (design-major, matching the other sweeps).
pub fn lint_grid(workers: usize) -> Vec<LintPoint> {
    lint_grid_sized(workers, LINT_THREADS, lint_fases, LINT_SEED)
}

/// [`lint_grid`] with explicit pool dimensions — the byte-stability
/// test runs a reduced grid through the same spec order and renderers.
pub fn lint_grid_sized(
    workers: usize,
    threads: usize,
    fases: impl Fn(Benchmark) -> usize + Sync,
    seed: u64,
) -> Vec<LintPoint> {
    let spec: Vec<(DesignKind, Benchmark)> = DesignKind::ALL_EXTENDED
        .iter()
        .flat_map(|&d| Benchmark::ALL.iter().map(move |&b| (d, b)))
        .collect();
    sweep::parallel_map(spec.len(), workers, |i| {
        let (design, benchmark) = spec[i];
        let fases = fases(benchmark);
        let abs = sweep::generated_program(benchmark, threads, fases, seed);
        let (program, meta) = lower_program_with_meta(design, &abs);
        LintPoint {
            design,
            benchmark,
            fases,
            report: analyze_program(&program, &meta),
        }
    })
}

/// Total findings across the grid.
pub fn total_findings(points: &[LintPoint]) -> usize {
    points.iter().map(|p| p.report.findings.len()).sum()
}

/// The markdown artifact (`results/lint.md`).
pub fn markdown(points: &[LintPoint]) -> String {
    use std::fmt::Write as _;
    let mut md = String::new();
    let _ = writeln!(md, "# Static persistency lint");
    let _ = writeln!(md);
    let _ = writeln!(
        md,
        "Every workload's lowered program, for every design, through the \
         static persistency verifier (`pmemspec-analyze`): structural \
         well-formedness, per-class persist-ordering obligations, flush \
         coverage (IntelX86), FASE durability, and speculation tagging \
         (PMEM-Spec) — no simulation. {LINT_THREADS} threads, seed \
         {LINT_SEED}, full-size FASE counts. Regenerate with \
         `cargo run --release --bin lint`."
    );
    let _ = writeln!(md);
    let _ = writeln!(md, "## Verdict");
    let _ = writeln!(md);
    let _ = write!(md, "| workload |");
    for design in DesignKind::ALL_EXTENDED {
        let _ = write!(md, " {} |", design.label());
    }
    let _ = writeln!(md);
    let _ = writeln!(
        md,
        "|---|{}",
        "---:|".repeat(DesignKind::ALL_EXTENDED.len())
    );
    for benchmark in Benchmark::ALL {
        let _ = write!(md, "| {} |", benchmark.label());
        for design in DesignKind::ALL_EXTENDED {
            let p = point(points, design, benchmark);
            let n = p.report.findings.len();
            if n == 0 {
                let _ = write!(md, " clean |");
            } else {
                let _ = write!(md, " **{n} findings** |");
            }
        }
        let _ = writeln!(md);
    }
    let _ = writeln!(md);
    let _ = writeln!(md, "## Coverage");
    let _ = writeln!(md);
    let _ = writeln!(
        md,
        "What \"clean\" quantifies over, per workload (identical across \
         designs: lowering changes the fences, not the persist events or \
         obligations)."
    );
    let _ = writeln!(md);
    let _ = writeln!(
        md,
        "| workload | FASEs/thread | PM stores | order points | FASEs checked |"
    );
    let _ = writeln!(md, "|---|---:|---:|---:|---:|");
    for benchmark in Benchmark::ALL {
        let p = point(points, DesignKind::ALL_EXTENDED[0], benchmark);
        let s = p.report.stats;
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {} |",
            benchmark.label(),
            p.fases,
            s.pm_stores,
            s.order_points,
            s.fases
        );
    }
    let findings = total_findings(points);
    if findings != 0 {
        let _ = writeln!(md);
        let _ = writeln!(md, "## Findings");
        let _ = writeln!(md);
        for p in points {
            for f in &p.report.findings {
                let _ = writeln!(md, "* {} / {}: {f}", p.design.label(), p.benchmark.label());
            }
        }
    }
    md
}

fn point(points: &[LintPoint], design: DesignKind, benchmark: Benchmark) -> &LintPoint {
    points
        .iter()
        .find(|p| p.design == design && p.benchmark == benchmark)
        .expect("full grid")
}

/// The JSON artifact (`results/lint.json`).
pub fn json_doc(points: &[LintPoint]) -> Json {
    Json::obj([
        ("experiment".into(), Json::Str("lint".into())),
        ("threads".into(), Json::Num(LINT_THREADS as f64)),
        ("seed".into(), Json::Num(LINT_SEED as f64)),
        (
            "rules".into(),
            Json::Arr(
                Rule::ALL
                    .iter()
                    .map(|r| Json::Str(r.label().into()))
                    .collect(),
            ),
        ),
        (
            "total_findings".into(),
            Json::Num(total_findings(points) as f64),
        ),
        (
            "points".into(),
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("design".into(), Json::Str(p.design.label().into())),
                            ("benchmark".into(), Json::Str(p.benchmark.label().into())),
                            ("fases".into(), Json::Num(p.fases as f64)),
                            (
                                "stats".into(),
                                Json::obj([
                                    ("threads".into(), Json::Num(p.report.stats.threads as f64)),
                                    (
                                        "pm_stores".into(),
                                        Json::Num(p.report.stats.pm_stores as f64),
                                    ),
                                    (
                                        "order_points".into(),
                                        Json::Num(p.report.stats.order_points as f64),
                                    ),
                                    ("fases".into(), Json::Num(p.report.stats.fases as f64)),
                                ]),
                            ),
                            (
                                "findings".into(),
                                Json::Arr(
                                    p.report
                                        .findings
                                        .iter()
                                        .map(|f| {
                                            Json::obj([
                                                ("rule".into(), Json::Str(f.rule.label().into())),
                                                ("thread".into(), Json::Num(f.thread as f64)),
                                                (
                                                    "op".into(),
                                                    match f.op_index {
                                                        Some(i) => Json::Num(i as f64),
                                                        None => Json::Str("-".into()),
                                                    },
                                                ),
                                                ("message".into(), Json::Str(f.message.clone())),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}
