//! Shared experiment harness for the paper's evaluation (§8).
//!
//! Each table/figure of the paper has a binary in `src/bin/` built on the
//! helpers here:
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table3` | Table 3 (simulator configuration) |
//! | `fig9` | Figure 9 (8-core throughput, all designs, all benchmarks) |
//! | `fig10` | Figure 10 (16/32/64-core sensitivity) |
//! | `fig11` | Figure 11 (speculation-buffer size sensitivity) |
//! | `fig12` | Figure 12 (persist-path latency sensitivity) |
//! | `misspec` | §8.4 (misspeculation rates + synthetic inducer sweep) |
//! | `ablation_detect` | Figure 4/6 (fetch- vs eviction-based detection) |
//!
//! Results print as markdown tables; pass `--csv` to any binary for
//! machine-readable output. Runs average several RNG seeds because
//! lock-contention scheduling makes single runs noisy (±5%).

use pmem_spec::{run_program, RunReport};
use pmemspec_engine::SimConfig;
use pmemspec_isa::{lower_program, DesignKind};
use pmemspec_workloads::{Benchmark, WorkloadParams};

/// Seeds averaged per data point.
pub const SEEDS: [u64; 3] = [11, 42, 1337];

/// FASEs per thread for the scaled-down main experiments (the paper runs
/// 100 K; throughput ratios converge far earlier).
pub fn default_fases(benchmark: Benchmark) -> usize {
    match benchmark {
        // Memcached moves a kilobyte per SET; keep wall time in check.
        Benchmark::Memcached => 120,
        _ => 400,
    }
}

/// Runs one (benchmark, design) point and returns the simulated
/// throughput in FASEs per second, averaged over [`SEEDS`].
pub fn throughput(benchmark: Benchmark, design: DesignKind, cfg: &SimConfig, fases: usize) -> f64 {
    let mut sum = 0.0;
    for &seed in &SEEDS {
        let params = WorkloadParams::small(cfg.cores)
            .with_fases(fases)
            .with_seed(seed);
        let g = benchmark.generate(&params);
        let program = lower_program(design, &g.program);
        let report = run_program(cfg.clone(), program).expect("valid experiment");
        if !report.misspeculation_free() {
            // Large core counts widen the speculation window (cores x path
            // latency), which can trip rare conservative detections;
            // recovery preserves every FASE, and the cost is already in
            // the measured throughput. Surface it for the record.
            eprintln!(
                "note: {benchmark}/{design} ({} cores): {} load / {} store \
                 misspeculations detected, {} FASEs re-executed",
                cfg.cores,
                report.load_misspec_detected,
                report.store_misspec_detected,
                report.fases_aborted
            );
        }
        sum += report.throughput();
    }
    sum / SEEDS.len() as f64
}

/// Runs one point and returns the full report (first seed only).
pub fn run_once(
    benchmark: Benchmark,
    design: DesignKind,
    cfg: &SimConfig,
    fases: usize,
) -> RunReport {
    let params = WorkloadParams::small(cfg.cores)
        .with_fases(fases)
        .with_seed(SEEDS[0]);
    let g = benchmark.generate(&params);
    run_program(cfg.clone(), lower_program(design, &g.program)).expect("valid experiment")
}

/// A row of normalized throughputs: benchmark label plus one relative
/// value per design, normalized to IntelX86.
#[derive(Debug, Clone)]
pub struct NormalizedRow {
    /// Benchmark label.
    pub label: String,
    /// Relative throughput per design, in the order of the design list
    /// the suite ran with.
    pub relative: Vec<f64>,
}

/// Runs the whole suite under `cfg` for `designs`, normalized to the
/// IntelX86 baseline.
pub fn normalized_suite_for(cfg: &SimConfig, designs: &[DesignKind]) -> Vec<NormalizedRow> {
    Benchmark::ALL
        .iter()
        .map(|&b| {
            let fases = default_fases(b);
            let base = throughput(b, DesignKind::IntelX86, cfg, fases);
            let relative = designs
                .iter()
                .map(|&d| {
                    if d == DesignKind::IntelX86 {
                        1.0
                    } else {
                        throughput(b, d, cfg, fases) / base
                    }
                })
                .collect();
            NormalizedRow {
                label: b.label().to_string(),
                relative,
            }
        })
        .collect()
}

/// Runs the paper's four designs (Figure 9/10).
pub fn normalized_suite(cfg: &SimConfig) -> Vec<NormalizedRow> {
    normalized_suite_for(cfg, &DesignKind::ALL)
}

/// Geometric mean of the rows, per design.
pub fn geomeans(rows: &[NormalizedRow]) -> Vec<f64> {
    let n = rows.first().map_or(0, |r| r.relative.len());
    let mut acc = vec![0.0f64; n];
    for row in rows {
        for (a, r) in acc.iter_mut().zip(&row.relative) {
            *a += r.ln();
        }
    }
    acc.into_iter()
        .map(|a| (a / rows.len() as f64).exp())
        .collect()
}

/// Output mode chosen by the `--csv` flag.
pub fn csv_mode() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// Prints rows as a markdown (or CSV) table with a geomean footer.
pub fn print_suite_for(title: &str, designs: &[DesignKind], rows: &[NormalizedRow]) {
    let csv = csv_mode();
    let labels: Vec<&str> = designs.iter().map(|d| d.label()).collect();
    let fmt_row = |vals: &[f64], digits: usize| -> String {
        vals.iter()
            .map(|v| format!("{v:.digits$}"))
            .collect::<Vec<_>>()
            .join(if csv { "," } else { " | " })
    };
    if csv {
        println!("benchmark,{}", labels.join(","));
        for row in rows {
            println!("{},{}", row.label, fmt_row(&row.relative, 4));
        }
        println!("geomean,{}", fmt_row(&geomeans(rows), 4));
    } else {
        println!("## {title}");
        println!();
        println!("| benchmark | {} |", labels.join(" | "));
        println!("|---|{}", "---|".repeat(labels.len()));
        for row in rows {
            println!("| {} | {} |", row.label, fmt_row(&row.relative, 2));
        }
        println!("| **geomean** | {} |", fmt_row(&geomeans(rows), 2));
        println!();
    }
}

/// Prints rows for the paper's four designs.
pub fn print_suite(title: &str, rows: &[NormalizedRow]) {
    print_suite_for(title, &DesignKind::ALL, rows);
}

/// The configuration used by Figure 11: the speculation buffer only sees
/// traffic when dirty PM lines leave the LLC, so the scaled-down runs use
/// a proportionally scaled LLC (the paper's 100 K-FASE footprints overflow
/// the 16 MB LLC naturally; our shorter runs do not). Documented in
/// EXPERIMENTS.md.
pub fn scaled_llc_config(cores: usize) -> SimConfig {
    let mut cfg = SimConfig::asplos21(cores);
    cfg.llc.size_bytes = 512 * 1024;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_math() {
        let rows = vec![
            NormalizedRow {
                label: "a".into(),
                relative: vec![1.0, 2.0, 4.0, 1.0],
            },
            NormalizedRow {
                label: "b".into(),
                relative: vec![1.0, 0.5, 1.0, 4.0],
            },
        ];
        let g = geomeans(&rows);
        assert!((g[0] - 1.0).abs() < 1e-9);
        assert!((g[1] - 1.0).abs() < 1e-9);
        assert!((g[2] - 2.0).abs() < 1e-9);
        assert!((g[3] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_helper_runs() {
        let cfg = SimConfig::asplos21(2);
        let t = throughput(Benchmark::ArraySwaps, DesignKind::PmemSpec, &cfg, 10);
        assert!(t > 0.0);
    }

    #[test]
    fn scaled_llc_keeps_validation() {
        let cfg = scaled_llc_config(8);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.llc.size_bytes, 512 * 1024);
    }
}
