//! Shared experiment harness for the paper's evaluation (§8).
//!
//! Each table/figure of the paper has a binary in `src/bin/` built on the
//! helpers here:
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table3` | Table 3 (simulator configuration) |
//! | `fig9` | Figure 9 (8-core throughput, all designs, all benchmarks) |
//! | `fig10` | Figure 10 (16/32/64-core sensitivity) |
//! | `fig11` | Figure 11 (speculation-buffer size sensitivity) |
//! | `fig12` | Figure 12 (persist-path latency sensitivity) |
//! | `misspec` | §8.4 (misspeculation rates + synthetic inducer sweep) |
//! | `ablation_detect` | Figure 4/6 (fetch- vs eviction-based detection) |
//! | `explain` | cycle-accounting breakdown per design (+ Perfetto traces) |
//! | `waterfall` | per-FASE latency waterfalls + p99 tail attribution |
//! | `smoke` | CI gate: reduced grid vs `results/smoke_reference.json` |
//! | `crashfuzz` | crash-consistency fuzzer + persistency litmus suite |
//!
//! Results print as markdown tables; every binary accepts the shared
//! flag set parsed by [`BenchArgs`] (`--csv`, `--json`, `--serial`,
//! `--jobs N`). Runs average several RNG seeds because lock-contention
//! scheduling makes single runs noisy (±5%).
//!
//! The grids themselves run on the [`sweep`] worker pool: points are
//! independent deterministic simulations, so they fan out across host
//! cores and reduce in spec order — parallel output is byte-identical
//! to `--serial`.

#![forbid(unsafe_code)]

pub mod args;
pub mod json;
pub mod lint;
pub mod sweep;

pub use args::BenchArgs;
pub use json::Json;
pub use sweep::{PointKey, PointResult, SweepResults, SweepSpec};

use pmem_spec::RunReport;
use pmemspec_engine::SimConfig;
use pmemspec_isa::DesignKind;
use pmemspec_workloads::Benchmark;

/// Seeds averaged per data point.
pub const SEEDS: [u64; 3] = [11, 42, 1337];

/// True when `PMEMSPEC_SMOKE` requests the reduced CI grid
/// (2 cores, 1 seed, 25 FASEs).
pub fn smoke_mode() -> bool {
    std::env::var("PMEMSPEC_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The seeds the current mode averages over: all of [`SEEDS`], or just
/// the first under [`smoke_mode`].
pub fn seeds() -> &'static [u64] {
    if smoke_mode() {
        &SEEDS[..1]
    } else {
        &SEEDS
    }
}

/// Core count for the main (Figure 9) system: 8, or 2 under
/// [`smoke_mode`].
pub fn suite_cores() -> usize {
    if smoke_mode() {
        2
    } else {
        8
    }
}

/// FASEs per thread for the scaled-down main experiments (the paper runs
/// 100 K; throughput ratios converge far earlier).
pub fn default_fases(benchmark: Benchmark) -> usize {
    if smoke_mode() {
        return 25;
    }
    match benchmark {
        // Memcached moves a kilobyte per SET; keep wall time in check.
        Benchmark::Memcached => 120,
        _ => 400,
    }
}

/// Runs one (benchmark, design) point and returns the simulated
/// throughput in FASEs per second, averaged over [`seeds`].
///
/// Shares the sweep harness's memoized generate/lower path, so
/// repeated calls against the same workload (e.g. the IntelX86
/// baseline of a normalization) do not regenerate identical inputs.
pub fn throughput(benchmark: Benchmark, design: DesignKind, cfg: &SimConfig, fases: usize) -> f64 {
    let seeds = seeds();
    let mut sum = 0.0;
    for &seed in seeds {
        let (report, note) = sweep::run_point(benchmark, design, cfg, fases, seed);
        if let Some(note) = note {
            eprintln!("{note}");
        }
        sum += report.throughput();
    }
    sum / seeds.len() as f64
}

/// Runs one point and returns the full report (first seed only).
pub fn run_once(
    benchmark: Benchmark,
    design: DesignKind,
    cfg: &SimConfig,
    fases: usize,
) -> RunReport {
    sweep::run_point(benchmark, design, cfg, fases, seeds()[0]).0
}

/// A row of normalized throughputs: benchmark label plus one relative
/// value per design, normalized to IntelX86.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedRow {
    /// Benchmark label.
    pub label: String,
    /// Relative throughput per design, in the order of the design list
    /// the suite ran with.
    pub relative: Vec<f64>,
}

/// The sweep grid behind [`normalized_suite_for`]: every benchmark
/// under every design (plus the IntelX86 baseline) for every seed.
pub fn suite_spec(
    cfg: &SimConfig,
    designs: &[DesignKind],
    seeds: &[u64],
    fases: impl Fn(Benchmark) -> usize,
) -> SweepSpec {
    let mut with_base: Vec<DesignKind> = vec![DesignKind::IntelX86];
    with_base.extend(
        designs
            .iter()
            .copied()
            .filter(|&d| d != DesignKind::IntelX86),
    );
    let mut spec = SweepSpec::new(vec![cfg.clone()]);
    spec.add_grid(0, &with_base, seeds, fases);
    spec
}

/// Reduces a [`suite_spec`] sweep into normalized rows, in benchmark
/// order, baselines first — the same arithmetic (and therefore the
/// same bits) as the historical serial loop.
pub fn suite_rows(
    results: &SweepResults,
    designs: &[DesignKind],
    seeds: &[u64],
    fases: impl Fn(Benchmark) -> usize,
) -> Vec<NormalizedRow> {
    let _ = fases; // the grid fixed the FASE counts; kept for symmetry
    Benchmark::ALL
        .iter()
        .map(|&b| {
            let base = results.mean_throughput(0, b, DesignKind::IntelX86, seeds);
            let relative = designs
                .iter()
                .map(|&d| {
                    if d == DesignKind::IntelX86 {
                        1.0
                    } else {
                        results.mean_throughput(0, b, d, seeds) / base
                    }
                })
                .collect();
            NormalizedRow {
                label: b.label().to_string(),
                relative,
            }
        })
        .collect()
}

/// Runs the whole suite under `cfg` for `designs`, normalized to the
/// IntelX86 baseline, on the parallel sweep harness.
pub fn normalized_suite_with(
    cfg: &SimConfig,
    designs: &[DesignKind],
    args: &BenchArgs,
) -> Vec<NormalizedRow> {
    let spec = suite_spec(cfg, designs, seeds(), default_fases);
    let results = spec.run(args);
    suite_rows(&results, designs, seeds(), default_fases)
}

/// [`normalized_suite_with`] using the process's command line.
pub fn normalized_suite_for(cfg: &SimConfig, designs: &[DesignKind]) -> Vec<NormalizedRow> {
    normalized_suite_with(cfg, designs, &BenchArgs::parse())
}

/// Runs the paper's four designs (Figure 9/10).
pub fn normalized_suite(cfg: &SimConfig) -> Vec<NormalizedRow> {
    normalized_suite_for(cfg, &DesignKind::ALL)
}

/// Geometric mean of the rows, per design.
pub fn geomeans(rows: &[NormalizedRow]) -> Vec<f64> {
    let n = rows.first().map_or(0, |r| r.relative.len());
    let mut acc = vec![0.0f64; n];
    for row in rows {
        for (a, r) in acc.iter_mut().zip(&row.relative) {
            *a += r.ln();
        }
    }
    acc.into_iter()
        .map(|a| (a / rows.len() as f64).exp())
        .collect()
}

/// Prints rows as a markdown (or CSV) table with a geomean footer.
pub fn print_suite_with(
    args: &BenchArgs,
    title: &str,
    designs: &[DesignKind],
    rows: &[NormalizedRow],
) {
    let csv = args.csv;
    let labels: Vec<&str> = designs.iter().map(|d| d.label()).collect();
    let fmt_row = |vals: &[f64], digits: usize| -> String {
        vals.iter()
            .map(|v| format!("{v:.digits$}"))
            .collect::<Vec<_>>()
            .join(if csv { "," } else { " | " })
    };
    if csv {
        println!("benchmark,{}", labels.join(","));
        for row in rows {
            println!("{},{}", row.label, fmt_row(&row.relative, 4));
        }
        println!("geomean,{}", fmt_row(&geomeans(rows), 4));
    } else {
        println!("## {title}");
        println!();
        println!("| benchmark | {} |", labels.join(" | "));
        println!("|---|{}", "---|".repeat(labels.len()));
        for row in rows {
            println!("| {} | {} |", row.label, fmt_row(&row.relative, 2));
        }
        println!("| **geomean** | {} |", fmt_row(&geomeans(rows), 2));
        println!();
    }
}

/// [`print_suite_with`] for the paper's four designs.
pub fn print_suite(args: &BenchArgs, title: &str, rows: &[NormalizedRow]) {
    print_suite_with(args, title, &DesignKind::ALL, rows);
}

/// Normalized suite rows as a JSON document (the `--json` payload of
/// the figure binaries).
pub fn suite_json(
    figure: &str,
    cores: usize,
    designs: &[DesignKind],
    rows: &[NormalizedRow],
) -> Json {
    Json::obj([
        ("figure".into(), Json::Str(figure.into())),
        ("cores".into(), Json::Num(cores as f64)),
        (
            "designs".into(),
            Json::Arr(
                designs
                    .iter()
                    .map(|d| Json::Str(d.label().into()))
                    .collect(),
            ),
        ),
        (
            "rows".into(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("benchmark".into(), Json::Str(r.label.clone())),
                            (
                                "relative".into(),
                                Json::Arr(r.relative.iter().map(|&v| Json::Num(v)).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "geomean".into(),
            Json::Arr(geomeans(rows).into_iter().map(Json::Num).collect()),
        ),
    ])
}

/// Writes a binary's `--json` payload to its target path (creating
/// `results/` if needed). No-op without `--json`.
///
/// # Panics
///
/// Panics if the file cannot be written — experiment output going
/// missing should fail the run loudly.
pub fn write_json(args: &BenchArgs, name: &str, doc: &Json) {
    let Some(path) = args.json_target(name) else {
        return;
    };
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
    }
    std::fs::write(&path, doc.render_pretty())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
}

/// The configuration used by Figure 11: the speculation buffer only sees
/// traffic when dirty PM lines leave the LLC, so the scaled-down runs use
/// a proportionally scaled LLC (the paper's 100 K-FASE footprints overflow
/// the 16 MB LLC naturally; our shorter runs do not). Documented in
/// EXPERIMENTS.md.
pub fn scaled_llc_config(cores: usize) -> SimConfig {
    let mut cfg = SimConfig::asplos21(cores);
    cfg.llc.size_bytes = 512 * 1024;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_math() {
        let rows = vec![
            NormalizedRow {
                label: "a".into(),
                relative: vec![1.0, 2.0, 4.0, 1.0],
            },
            NormalizedRow {
                label: "b".into(),
                relative: vec![1.0, 0.5, 1.0, 4.0],
            },
        ];
        let g = geomeans(&rows);
        assert!((g[0] - 1.0).abs() < 1e-9);
        assert!((g[1] - 1.0).abs() < 1e-9);
        assert!((g[2] - 2.0).abs() < 1e-9);
        assert!((g[3] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_helper_runs() {
        let cfg = SimConfig::asplos21(2);
        let t = throughput(Benchmark::ArraySwaps, DesignKind::PmemSpec, &cfg, 10);
        assert!(t > 0.0);
    }

    #[test]
    fn scaled_llc_keeps_validation() {
        let cfg = scaled_llc_config(8);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.llc.size_bytes, 512 * 1024);
    }

    #[test]
    fn suite_spec_covers_baseline_exactly_once() {
        let cfg = SimConfig::asplos21(2);
        let spec = suite_spec(&cfg, &DesignKind::ALL, &[11], |_| 5);
        // 8 benchmarks x 4 designs x 1 seed; IntelX86 not duplicated.
        assert_eq!(spec.points.len(), 8 * 4);
        let baselines = spec
            .points
            .iter()
            .filter(|p| p.key.design == DesignKind::IntelX86)
            .count();
        assert_eq!(baselines, 8);
    }
}
