//! A minimal JSON value: writer + parser, no external dependencies.
//!
//! The experiment binaries emit their aggregated results as JSON
//! (`--json`) so downstream tooling and the CI smoke gate can consume
//! them without scraping markdown, and the smoke gate reads its
//! reference file back through [`Json::parse`]. The workspace builds
//! fully offline, so this stays hand-rolled instead of pulling in
//! serde.

use std::fmt::Write as _;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`; the experiment payloads are ratios
    /// and counters that fit comfortably).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj<I>(pairs: I) -> Json
    where
        I: IntoIterator<Item = (String, Json)>,
    {
        Json::Obj(pairs.into_iter().collect())
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders the document compactly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// Renders the document with two-space indentation and a trailing
    /// newline — the format checked-in reference files use.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind);
            }),
            Json::Obj(pairs) => write_seq(out, indent, '{', '}', pairs.len(), |out, i, ind| {
                write_str(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, ind);
            }),
        }
    }

    /// Parses a JSON document. Returns a message with a byte offset on
    /// malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq<F>(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    n: usize,
    mut f: F,
) where
    F: FnMut(&mut String, usize, Option<usize>),
{
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|i| i + 1);
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(level) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(level));
        }
        f(out, i, inner);
    }
    if let Some(level) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(level));
    }
    out.push(close);
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            loop {
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                if !items.is_empty() {
                    expect(bytes, pos, ",")?;
                }
                items.push(parse_value(bytes, pos)?);
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            loop {
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                if !pairs.is_empty() {
                    expect(bytes, pos, ",")?;
                    skip_ws(bytes, pos);
                }
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < bytes.len()
                && (bytes[*pos].is_ascii_digit()
                    || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
            text.parse()
                .map(Json::Num)
                .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
        }
        Some(c) => Err(format!(
            "unexpected byte `{}` at {pos}",
            *c as char,
            pos = *pos
        )),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, "\"")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input came from &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let doc = Json::obj([
            ("name".into(), Json::Str("fig9".into())),
            ("cores".into(), Json::Num(8.0)),
            ("ok".into(), Json::Bool(true)),
            (
                "rows".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(1.272)]),
            ),
        ]);
        let text = doc.render();
        assert_eq!(
            text,
            r#"{"name":"fig9","cores":8,"ok":true,"rows":[1,1.272]}"#
        );
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn roundtrip_pretty() {
        let doc = Json::obj([
            ("a".into(), Json::Num(1.5)),
            ("b".into(), Json::Arr(vec![])),
            ("c".into(), Json::Null),
        ]);
        let text = doc.render_pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn escapes_roundtrip() {
        let doc = Json::Str("a \"quote\"\nand \\ tab\t".into());
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"geomeans": {"PMEM-Spec": 1.27}, "seeds": 1}"#).unwrap();
        let g = doc.get("geomeans").unwrap();
        assert_eq!(g.get("PMEM-Spec").unwrap().as_f64(), Some(1.27));
        assert_eq!(doc.get("seeds").unwrap().as_f64(), Some(1.0));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn negative_and_exponent_numbers() {
        assert_eq!(Json::parse("-2.5e3").unwrap().as_f64(), Some(-2500.0));
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "\"abc", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad}");
        }
    }
}
