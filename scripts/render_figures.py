#!/usr/bin/env python3
"""Render static SVG figures from the markdown tables in results/.

Usage: python3 scripts/render_figures.py
Writes results/fig9.svg, results/fig11.svg, results/fig12.svg.

Design notes (per the repo's charting conventions): categorical palette
validated for CVD separation (blue #2a78d6, aqua #1baf7a, yellow #eda100);
bars <= 24 px with 4 px rounded data-ends and square baselines; 2 px
surface gaps between touching bars; hairline solid gridlines; text in ink
tokens, never series colors; a legend for >= 2 series; selective direct
labels (the headline series only); the full value table ships alongside as
results/*.md.
"""

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"

SURFACE = "#fcfcfb"
INK = "#0b0b0b"
INK2 = "#52514e"
GRID = "#e4e3e0"
SERIES = ["#2a78d6", "#1baf7a", "#eda100"]  # blue, aqua, yellow
FONT = "font-family='system-ui, -apple-system, Segoe UI, sans-serif'"


def parse_table(path, skip_geomean=True):
    rows = []
    for line in path.read_text().splitlines():
        if not line.startswith("|") or line.startswith("|---"):
            continue
        cells = [c.strip() for c in line.strip("|").split("|")]
        if cells[0] in ("benchmark", "entries", "persist path (ns)"):
            header = cells
            continue
        if skip_geomean and cells[0].startswith("**"):
            continue
        rows.append(cells)
    return header, rows


def svg_open(width, height, title):
    return [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' height='{height}' "
        f"viewBox='0 0 {width} {height}' role='img' aria-label='{title}'>",
        f"<rect width='{width}' height='{height}' fill='{SURFACE}'/>",
        f"<text x='24' y='30' {FONT} font-size='15' font-weight='600' fill='{INK}'>{title}</text>",
    ]


def y_axis(parts, x0, x1, y_of, ticks, fmt=lambda v: f"{v:.1f}"):
    for v in ticks:
        y = y_of(v)
        parts.append(
            f"<line x1='{x0}' y1='{y:.1f}' x2='{x1}' y2='{y:.1f}' stroke='{GRID}' stroke-width='1'/>"
        )
        parts.append(
            f"<text x='{x0 - 8}' y='{y + 4:.1f}' {FONT} font-size='11' fill='{INK2}' "
            f"text-anchor='end'>{fmt(v)}</text>"
        )


def render_fig9():
    header, rows = parse_table(RESULTS / "fig9.md")
    designs = header[2:]  # DPO, HOPS, PMEM-Spec
    width, height = 860, 420
    x0, x1, y_top, y_base = 64, width - 24, 70, height - 64
    vmax = 2.0
    y_of = lambda v: y_base - (v / vmax) * (y_base - y_top)
    parts = svg_open(width, height, "Figure 9 — 8-core throughput, normalized to IntelX86")
    y_axis(parts, x0, x1, y_of, [0.0, 0.5, 1.0, 1.5, 2.0])
    # Baseline rule at 1.0 gets ink emphasis.
    parts.append(
        f"<line x1='{x0}' y1='{y_of(1.0):.1f}' x2='{x1}' y2='{y_of(1.0):.1f}' "
        f"stroke='{INK2}' stroke-width='1'/>"
    )
    parts.append(
        f"<text x='{x1}' y='{y_of(1.0) - 5:.1f}' {FONT} font-size='10' fill='{INK2}' "
        f"text-anchor='end'>IntelX86 = 1.0</text>"
    )
    group_w = (x1 - x0) / len(rows)
    bar_w, gap = 20, 2
    for gi, row in enumerate(rows):
        label = row[0]
        values = [float(v) for v in row[2:5]]
        cluster_w = len(values) * bar_w + (len(values) - 1) * gap
        gx = x0 + gi * group_w + (group_w - cluster_w) / 2
        for si, v in enumerate(values):
            x = gx + si * (bar_w + gap)
            y = y_of(min(v, vmax))
            h = y_base - y
            r = min(4, h / 2)
            # Rounded data-end (top), square baseline.
            parts.append(
                f"<path d='M{x:.1f} {y_base:.1f} V{y + r:.1f} Q{x:.1f} {y:.1f} {x + r:.1f} {y:.1f} "
                f"H{x + bar_w - r:.1f} Q{x + bar_w:.1f} {y:.1f} {x + bar_w:.1f} {y + r:.1f} "
                f"V{y_base:.1f} Z' fill='{SERIES[si]}'/>"
            )
            # Selective labels: the headline series only.
            if si == 2:
                parts.append(
                    f"<text x='{x + bar_w / 2:.1f}' y='{y - 5:.1f}' {FONT} font-size='10' "
                    f"fill='{INK}' text-anchor='middle'>{v:.2f}</text>"
                )
        parts.append(
            f"<text x='{x0 + gi * group_w + group_w / 2:.1f}' y='{y_base + 18}' {FONT} "
            f"font-size='11' fill='{INK2}' text-anchor='middle'>{label}</text>"
        )
    # Legend.
    lx = x0
    for si, name in enumerate(designs):
        parts.append(f"<rect x='{lx}' y='44' width='10' height='10' rx='2' fill='{SERIES[si]}'/>")
        parts.append(
            f"<text x='{lx + 15}' y='53' {FONT} font-size='11' fill='{INK}'>{name}</text>"
        )
        lx += 15 + 9 * len(name) + 24
    parts.append("</svg>")
    (RESULTS / "fig9.svg").write_text("\n".join(parts))


def render_fig11():
    _, rows = parse_table(RESULTS / "fig11.md")
    width, height = 520, 340
    x0, x1, y_top, y_base = 64, width - 24, 64, height - 56
    vmax = 1.0
    y_of = lambda v: y_base - (v / vmax) * (y_base - y_top)
    parts = svg_open(width, height, "Figure 11 — speculation-buffer size (PMEM-Spec, 8 cores)")
    y_axis(parts, x0, x1, y_of, [0.0, 0.25, 0.5, 0.75, 1.0], fmt=lambda v: f"{v:.2f}")
    group_w = (x1 - x0) / len(rows)
    bar_w = 24
    for gi, row in enumerate(rows):
        entries, rel = row[0], float(row[1])
        x = x0 + gi * group_w + (group_w - bar_w) / 2
        y = y_of(rel)
        h = y_base - y
        r = min(4, h / 2)
        parts.append(
            f"<path d='M{x:.1f} {y_base:.1f} V{y + r:.1f} Q{x:.1f} {y:.1f} {x + r:.1f} {y:.1f} "
            f"H{x + bar_w - r:.1f} Q{x + bar_w:.1f} {y:.1f} {x + bar_w:.1f} {y + r:.1f} "
            f"V{y_base:.1f} Z' fill='{SERIES[0]}'/>"
        )
        parts.append(
            f"<text x='{x + bar_w / 2:.1f}' y='{y - 5:.1f}' {FONT} font-size='10' fill='{INK}' "
            f"text-anchor='middle'>{rel:.3f}</text>"
        )
        parts.append(
            f"<text x='{x + bar_w / 2:.1f}' y='{y_base + 16}' {FONT} font-size='11' "
            f"fill='{INK2}' text-anchor='middle'>{entries}</text>"
        )
    parts.append(
        f"<text x='{(x0 + x1) / 2:.1f}' y='{height - 16}' {FONT} font-size='11' fill='{INK2}' "
        f"text-anchor='middle'>speculation-buffer entries (throughput vs 16-entry)</text>"
    )
    parts.append("</svg>")
    (RESULTS / "fig11.svg").write_text("\n".join(parts))


def render_fig12():
    _, rows = parse_table(RESULTS / "fig12.md")
    width, height = 560, 360
    x0, x1, y_top, y_base = 64, width - 110, 64, height - 56
    xs = [int(r[0]) for r in rows]
    hops = [float(r[1]) for r in rows]
    spec = [float(r[2]) for r in rows]
    vmin, vmax = 0.6, 1.4
    x_of = lambda ns: x0 + (ns - xs[0]) / (xs[-1] - xs[0]) * (x1 - x0)
    y_of = lambda v: y_base - (v - vmin) / (vmax - vmin) * (y_base - y_top)
    parts = svg_open(width, height, "Figure 12 — persist-path latency sensitivity (geomean)")
    y_axis(parts, x0, x1, y_of, [0.6, 0.8, 1.0, 1.2, 1.4])
    parts.append(
        f"<line x1='{x0}' y1='{y_of(1.0):.1f}' x2='{x1}' y2='{y_of(1.0):.1f}' "
        f"stroke='{INK2}' stroke-width='1'/>"
    )
    parts.append(
        f"<text x='{x0 + 4}' y='{y_of(1.0) - 5:.1f}' {FONT} font-size='10' "
        f"fill='{INK2}'>IntelX86 = 1.0</text>"
    )
    for ns in xs:
        parts.append(
            f"<text x='{x_of(ns):.1f}' y='{y_base + 16}' {FONT} font-size='11' fill='{INK2}' "
            f"text-anchor='middle'>{ns}</text>"
        )
    for si, (name, series) in enumerate([("HOPS", hops), ("PMEM-Spec", spec)]):
        pts = " ".join(f"{x_of(ns):.1f},{y_of(v):.1f}" for ns, v in zip(xs, series))
        parts.append(
            f"<polyline points='{pts}' fill='none' stroke='{SERIES[si]}' stroke-width='2' "
            f"stroke-linejoin='round' stroke-linecap='round'/>"
        )
        for ns, v in zip(xs, series):
            # 8px markers with a 2px surface ring.
            parts.append(
                f"<circle cx='{x_of(ns):.1f}' cy='{y_of(v):.1f}' r='4' fill='{SERIES[si]}' "
                f"stroke='{SURFACE}' stroke-width='2'/>"
            )
        # Direct end labels (ink, keyed by a colored dash).
        ex, ey = x_of(xs[-1]), y_of(series[-1])
        parts.append(
            f"<line x1='{ex + 6:.1f}' y1='{ey:.1f}' x2='{ex + 18:.1f}' y2='{ey:.1f}' "
            f"stroke='{SERIES[si]}' stroke-width='2'/>"
        )
        parts.append(
            f"<text x='{ex + 22:.1f}' y='{ey + 4:.1f}' {FONT} font-size='11' "
            f"fill='{INK}'>{name}</text>"
        )
    parts.append(
        f"<text x='{(x0 + x1) / 2:.1f}' y='{height - 16}' {FONT} font-size='11' fill='{INK2}' "
        f"text-anchor='middle'>persist-path latency (ns)</text>"
    )
    parts.append("</svg>")
    (RESULTS / "fig12.svg").write_text("\n".join(parts))


if __name__ == "__main__":
    render_fig9()
    render_fig11()
    render_fig12()
    print("wrote results/fig9.svg, results/fig11.svg, results/fig12.svg")
