#!/usr/bin/env bash
# Regenerates every experiment artifact under results/.
# Usage: scripts/regen_results.sh   (~10 minutes; fig10 dominates)
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release --workspace
mkdir -p results
for bin in table3 fig9 fig11 fig12 misspec ablation_detect ablation_checkpoint \
           extended multi_pmc characterize; do
    echo "== $bin"
    ./target/release/$bin > "results/$bin.md"
done
echo "== fig10 (16/32/64 cores, the slow one)"
./target/release/fig10 > results/fig10.md
if command -v python3 >/dev/null; then
    python3 scripts/render_figures.py
fi
echo "done — see results/"
