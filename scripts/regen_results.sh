#!/usr/bin/env bash
# Regenerates every experiment artifact under results/ (markdown + JSON).
#
# The binaries fan their simulation grids out across host cores via the
# sweep harness in crates/bench/src/sweep.rs; output is byte-identical
# to a serial run. Knobs:
#
#   PMEMSPEC_JOBS=N    worker threads per binary (default: all cores)
#   PMEMSPEC_SMOKE=1   reduced grid (2 cores, 1 seed, 25 FASEs) — fast
#                      sanity pass, NOT the checked-in numbers
#
# Wall time: ~4 minutes serially on one core (fig10 dominates); a
# multi-core machine divides that by roughly its core count. Pass
# --serial to reproduce the single-threaded run exactly.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release --workspace
mkdir -p results
for bin in table3 fig9 fig11 fig12 misspec ablation_detect ablation_checkpoint \
           extended multi_pmc characterize crashfuzz; do
    echo "== $bin"
    ./target/release/$bin --json "$@" > "results/$bin.md"
done
echo "== explain (cycle-accounting breakdown)"
./target/release/explain --out results "$@" > /dev/null
echo "== fig10 (16/32/64 cores, the slow one)"
./target/release/fig10 --json "$@" > results/fig10.md
if command -v python3 >/dev/null; then
    python3 scripts/render_figures.py
fi
echo "done — see results/"
