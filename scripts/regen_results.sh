#!/usr/bin/env bash
# Regenerates every experiment artifact under results/ (markdown + JSON).
#
# The binaries fan their simulation grids out across host cores via the
# sweep harness in crates/bench/src/sweep.rs; output is byte-identical
# to a serial run. Knobs:
#
#   PMEMSPEC_JOBS=N    worker threads per binary (default: all cores)
#   PMEMSPEC_SMOKE=1   reduced grid (2 cores, 1 seed, 25 FASEs) — fast
#                      sanity pass, NOT the checked-in numbers
#
# Wall time: ~4 minutes serially on one core (fig10 dominates); a
# multi-core machine divides that by roughly its core count. Pass
# --serial to reproduce the single-threaded run exactly.
#
# Every step prints its own wall time so suite-cost regressions show up
# in CI logs per binary instead of hiding inside one opaque total.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release --workspace
mkdir -p results

now_ms() { date +%s%3N; }
# took <name> <start_ms>: prints "== name: N.NNNs".
took() {
    local ms=$(($(now_ms) - $2))
    printf '== %s: %d.%03ds\n' "$1" $((ms / 1000)) $((ms % 1000))
}

suite_start=$(now_ms)
for bin in table3 fig9 fig11 fig12 misspec ablation_detect ablation_checkpoint \
           extended multi_pmc characterize crashfuzz; do
    start=$(now_ms)
    ./target/release/$bin --json "$@" > "results/$bin.md"
    took "$bin" "$start"
done
start=$(now_ms)
./target/release/explain --out results --collapsed "$@" > /dev/null
took "explain (cycle-accounting breakdown)" "$start"
start=$(now_ms)
./target/release/waterfall --out results "$@" > /dev/null
took "waterfall (per-FASE span waterfalls)" "$start"
start=$(now_ms)
./target/release/lint --out results "$@" > /dev/null
took "lint (static persistency verifier)" "$start"
start=$(now_ms)
./target/release/fig10 --json "$@" > results/fig10.md
took "fig10 (16/32/64 cores, the slow one)" "$start"
if command -v python3 >/dev/null; then
    python3 scripts/render_figures.py
fi
took "total" "$suite_start"
echo "done — see results/"
